// Price publication channel between the TUBE Optimizer and TUBE GUIs.
//
// "The prices determined from the TUBE Optimizer are synced to the TUBE GUI
// at every period. ... For security and scalability of the systems, the
// TUBE GUI pulls the price information only once in each period."
//
// The channel stores the currently published reward schedule (one reward
// per period index) and enforces the pull-once-per-period discipline per
// subscriber: repeated pulls in the same period return the locally cached
// copy and are counted, mirroring the prototype's behaviour of hitting the
// server once and reading the RRD cache afterwards. (The prototype's
// SSL/TLS transport is connection plumbing with no behavioral effect; this
// in-process channel preserves the sync/caching semantics.)
//
// Graceful degradation: an optional FaultInjector models the transport
// failing. A server fetch that is dropped is retried up to
// `ChannelResilienceConfig::max_retries` times within the period; if every
// attempt fails the subscriber serves its last-known-good schedule for up
// to `staleness_ttl` consecutive missed periods, then falls back to the
// flat-TIP (all-zero-reward) schedule — users simply stop deferring, which
// is always safe — until a fetch succeeds again. While in fallback the
// subscriber stops burning retries (bounded backoff: one attempt per
// period) until the transport recovers. All of it is per-subscriber
// deterministic accounting; with no injector (or a zero-rate plan) the pull
// path is bit-identical to the fault-free channel.
//
// Thread safety: the optimizer publishes while many subscribers pull
// concurrently (the fleet fan-out does exactly this), so all channel state
// is guarded by one mutex and `pull` returns a *copy* of the schedule — a
// reference into the subscriber cache could be invalidated by a concurrent
// `subscribe` (vector growth) or a same-subscriber pull in a later period.
// Distinct subscribers may pull from distinct threads; pulls for one
// subscriber must still be time-ordered (per-subscriber discipline, as
// before). The injector is const and stateless, so reading it under the
// channel mutex is race-free.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "common/fault.hpp"
#include "math/vector_ops.hpp"

namespace tdp {

/// Staleness/retry policy for degraded transports.
struct ChannelResilienceConfig {
  /// Consecutive missed periods a subscriber tolerates on last-known-good
  /// before falling back to the flat-TIP schedule.
  std::size_t staleness_ttl = 2;
  /// Extra fetch attempts per period while not in fallback.
  std::size_t max_retries = 2;
};

/// Where the schedule returned by one pull actually came from.
enum class PullSource {
  kServer,    ///< fresh fetch from the published schedule
  kCache,     ///< repeat pull within the period (normal cache hit)
  kStale,     ///< fetch failed; last-known-good within the TTL
  kFallback,  ///< TTL exhausted; flat-TIP zero-reward schedule
};

/// Per-subscriber degradation counters (all monotone).
struct SubscriberTelemetry {
  std::size_t fetches = 0;           ///< successful server fetches
  std::size_t cache_hits = 0;        ///< repeat pulls within a period
  std::size_t dropped_attempts = 0;  ///< individual fetch attempts dropped
  std::size_t retries = 0;           ///< extra attempts made after a drop
  std::size_t stale_periods = 0;     ///< periods served last-known-good
  std::size_t fallback_periods = 0;  ///< periods served flat-TIP
  std::size_t skewed_periods = 0;    ///< periods lost to clock skew
  std::size_t recoveries = 0;        ///< successful fetch after >=1 miss
  std::size_t missed_streak = 0;     ///< current consecutive missed periods
};

/// The serializable slice of a PriceChannel (see export_state).
struct PriceChannelState {
  struct Subscriber {
    math::Vector cache;
    std::uint64_t last_pull_period = ~0ull;  ///< ~0 = never pulled a period
    bool pulled_ever = false;
    SubscriberTelemetry stats;
  };
  math::Vector published;
  std::uint64_t publish_count = 0;
  std::vector<Subscriber> subscribers;
};

class PriceChannel {
 public:
  explicit PriceChannel(std::size_t periods);

  std::size_t periods() const { return periods_; }

  /// Optimizer side: publish a full reward schedule (period-indexed).
  void publish(const math::Vector& rewards);

  /// Register a GUI subscriber; returns its id.
  std::size_t subscribe();

  /// Install the fault injector consulted on every fetch (nullptr = fault
  /// free). The injector must outlive the channel; it is read-only and
  /// thread-safe, so this merely swaps a pointer.
  void set_fault_injector(const FaultInjector* injector);

  /// Staleness/retry policy for degraded pulls.
  void set_resilience(const ChannelResilienceConfig& config);

  /// GUI side: fetch the schedule during absolute period `abs_period`
  /// (monotonically nondecreasing across the run, not wrapped to the day).
  /// The first pull in a period goes "to the server" (copies the published
  /// schedule into the subscriber cache); later pulls in the same period
  /// hit the cache. Under an injector the fetch may be dropped, in which
  /// case the subscriber degrades as described in the header comment.
  /// Returns a snapshot the caller owns — never a reference that a
  /// concurrent publish/subscribe/pull could invalidate mid-read.
  math::Vector pull(std::size_t subscriber, std::size_t abs_period);

  /// As `pull`, also reporting where the schedule came from.
  math::Vector pull_with_source(std::size_t subscriber,
                                std::size_t abs_period, PullSource* source);

  /// Server fetches this subscriber performed (for scalability assertions).
  std::size_t server_fetches(std::size_t subscriber) const;

  /// Cache hits (redundant pulls within a period).
  std::size_t cache_hits(std::size_t subscriber) const;

  /// Full degradation counters for one subscriber.
  SubscriberTelemetry telemetry(std::size_t subscriber) const;

  std::size_t publish_count() const;

  /// Snapshot the published schedule and every subscriber's cache, clock,
  /// and counters (checkpoint support; injector and policy are config, not
  /// state). Safe to call concurrently with pulls.
  PriceChannelState export_state() const;

  /// Install a snapshot. The channel must already hold exactly
  /// `state.subscribers.size()` subscriptions (restore re-subscribes the
  /// same topology before calling this).
  void restore_state(const PriceChannelState& state);

 private:
  struct Subscriber {
    math::Vector cache;
    std::size_t last_pull_period = static_cast<std::size_t>(-1);
    bool pulled_ever = false;
    SubscriberTelemetry stats;
  };

  std::size_t periods_;
  mutable std::mutex mutex_;              ///< guards everything below
  math::Vector published_;
  std::size_t publish_count_ = 0;
  std::vector<Subscriber> subscribers_;
  const FaultInjector* injector_ = nullptr;
  ChannelResilienceConfig resilience_;
};

}  // namespace tdp
