// Price publication channel between the TUBE Optimizer and TUBE GUIs.
//
// "The prices determined from the TUBE Optimizer are synced to the TUBE GUI
// at every period. ... For security and scalability of the systems, the
// TUBE GUI pulls the price information only once in each period."
//
// The channel stores the currently published reward schedule (one reward
// per period index) and enforces the pull-once-per-period discipline per
// subscriber: repeated pulls in the same period return the locally cached
// copy and are counted, mirroring the prototype's behaviour of hitting the
// server once and reading the RRD cache afterwards. (The prototype's
// SSL/TLS transport is connection plumbing with no behavioral effect; this
// in-process channel preserves the sync/caching semantics.)
//
// Thread safety: the optimizer publishes while many subscribers pull
// concurrently (the fleet fan-out does exactly this), so all channel state
// is guarded by one mutex and `pull` returns a *copy* of the schedule — a
// reference into the subscriber cache could be invalidated by a concurrent
// `subscribe` (vector growth) or a same-subscriber pull in a later period.
// Distinct subscribers may pull from distinct threads; pulls for one
// subscriber must still be time-ordered (per-subscriber discipline, as
// before).
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "math/vector_ops.hpp"

namespace tdp {

class PriceChannel {
 public:
  explicit PriceChannel(std::size_t periods);

  std::size_t periods() const { return periods_; }

  /// Optimizer side: publish a full reward schedule (period-indexed).
  void publish(const math::Vector& rewards);

  /// Register a GUI subscriber; returns its id.
  std::size_t subscribe();

  /// GUI side: fetch the schedule during absolute period `abs_period`
  /// (monotonically nondecreasing across the run, not wrapped to the day).
  /// The first pull in a period goes "to the server" (copies the published
  /// schedule into the subscriber cache); later pulls in the same period
  /// hit the cache. Returns a snapshot the caller owns — never a reference
  /// that a concurrent publish/subscribe/pull could invalidate mid-read.
  math::Vector pull(std::size_t subscriber, std::size_t abs_period);

  /// Server fetches this subscriber performed (for scalability assertions).
  std::size_t server_fetches(std::size_t subscriber) const;

  /// Cache hits (redundant pulls within a period).
  std::size_t cache_hits(std::size_t subscriber) const;

  std::size_t publish_count() const;

 private:
  struct Subscriber {
    math::Vector cache;
    std::size_t last_pull_period = static_cast<std::size_t>(-1);
    bool pulled_ever = false;
    std::size_t fetches = 0;
    std::size_t hits = 0;
  };

  std::size_t periods_;
  mutable std::mutex mutex_;              ///< guards everything below
  math::Vector published_;
  std::size_t publish_count_ = 0;
  std::vector<Subscriber> subscribers_;
};

}  // namespace tdp
