// TUBE measurement engine.
//
// "The measurement engine keeps track of each user's aggregate history and
// passes this information to the profiling engine." In the prototype this
// was IPtables accounting; here it snapshots the bottleneck link's
// cumulative per-(user, class) byte counters at period boundaries and
// differences them into per-period usage — the same per-period aggregate
// the estimator needs, and the per-user record needed for billing ("the ISP
// only needs to record a user's TDP usage per period").
//
// Input sanitization: real accounting counters go bad — NaN from a broken
// exporter, negative deltas from a counter reset. Such samples are rejected
// *unconditionally* (recorded as zero usage, counted, and warned about at a
// rate-limited cadence) so garbage never propagates into the profiler or
// the billing records.
#pragma once

#include <cstddef>
#include <vector>

#include "netsim/link.hpp"

namespace tdp {

class MeasurementEngine {
 public:
  /// @param users    number of users behind the bottleneck
  /// @param classes  number of traffic classes
  MeasurementEngine(std::size_t users, std::size_t classes);

  /// Snapshot the link's cumulative counters at a period boundary, closing
  /// the current measurement period.
  void close_period(const netsim::BottleneckLink& link);

  /// As above but from raw cumulative counters (flat (user, class) layout,
  /// size users*classes) — the seam telemetry importers and tests use.
  /// Non-finite counters keep the previous baseline (the sample is
  /// rejected); a counter that moved backwards (reset) re-baselines.
  void close_period(const std::vector<double>& cumulative);

  /// Samples rejected by sanitization (NaN/inf counters, negative deltas)
  /// since construction. Each rejected sample was recorded as zero usage.
  std::size_t rejected_samples() const { return rejected_samples_; }

  std::size_t periods_recorded() const { return per_period_.size(); }
  std::size_t users() const { return users_; }
  std::size_t classes() const { return classes_; }

  /// MB served to (user, class) during recorded period `period`.
  double usage_mb(std::size_t period, std::size_t user,
                  std::size_t traffic_class) const;

  /// MB served to a user during a period (all classes).
  double user_usage_mb(std::size_t period, std::size_t user) const;

  /// MB served during a period (all users, all classes).
  double total_usage_mb(std::size_t period) const;

  /// Totals per period across the whole recording (aggregate series the
  /// profiling engine consumes).
  std::vector<double> total_series() const;

  /// Per-user series (Fig. 11/12 traffic curves).
  std::vector<double> user_series(std::size_t user) const;

  /// Forget all recorded periods but keep counter baselines (phase reset).
  void reset(const netsim::BottleneckLink& link);

 private:
  std::size_t index(std::size_t user, std::size_t traffic_class) const;

  /// Count and (rate-limitedly) warn about one rejected sample.
  void reject_sample(std::size_t flat_index, double value);

  std::size_t users_;
  std::size_t classes_;
  std::vector<double> baseline_;                 ///< cumulative at phase start
  std::vector<std::vector<double>> per_period_;  ///< period -> flat (u,c)
  std::size_t rejected_samples_ = 0;
};

}  // namespace tdp
