// Guard between raw measured aggregates and OnlinePricer::observe_period.
//
// The online price-determination algorithm rescales a period's demand
// estimate to whatever the measurement path reports. If that path degrades
// — a lost sample, a NaN from a sick exporter, a negative delta, a spike
// outlier — feeding the raw value would corrupt the demand model and the
// reward trajectory with it. This guard admits exactly one sample per
// period and returns the value that is safe to feed:
//
//   * finite, nonnegative, below the spike bound  -> passed through
//     untouched (bit-identical: the guard is invisible on clean data);
//   * NaN / negative                              -> rejected, treated as
//     a gap;
//   * missing (std::nullopt)                      -> a gap;
//   * above `max_spike_factor` x the period's reference level -> clamped
//     to that bound (a transient burst must not be learned as recurring
//     demand);
//   * gaps: carry the period's last-known-good value forward for up to
//     `max_carry_forward` consecutive gapped days of that period, then
//     interpolate to the reference profile (the model's expected demand) —
//     an extended blackout decays to the prior instead of freezing a
//     possibly-bad last sample forever.
//
// Every admitted value is labeled `degraded` when it is not the raw
// measurement, so the pricer's health state machine can distinguish real
// observations from synthesized ones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace tdp {

/// The serializable slice of a MeasurementGuard (see export_state).
struct MeasurementGuardState {
  std::vector<double> last_good;
  std::vector<bool> has_last_good;
  std::vector<std::uint64_t> gap_streak;
  std::uint64_t gaps_filled = 0;
  std::uint64_t nan_rejected = 0;
  std::uint64_t negative_rejected = 0;
  std::uint64_t spikes_clamped = 0;
};

struct MeasurementGuardConfig {
  /// Spike bound as a multiple of the period's reference level.
  double max_spike_factor = 8.0;
  /// Consecutive gaps (per period index) filled with last-known-good
  /// before decaying to the reference profile.
  std::size_t max_carry_forward = 3;
  /// Floor on blackout decay, as a fraction of the last good sample: a
  /// multi-day blackout over a near-zero reference period must not decay
  /// the carried value toward zero, or the first post-blackout re-solve
  /// sees a demand cliff and spikes the schedule. 0 disables the floor
  /// (pure decay-to-reference). Must lie in [0, 1).
  double carry_floor_fraction = 0.5;
};

class MeasurementGuard {
 public:
  /// `reference` is the per-period prior (the demand profile the pricer's
  /// model was built from); it sizes the guard and anchors gap filling and
  /// spike bounds. Must be finite and nonnegative.
  explicit MeasurementGuard(std::vector<double> reference,
                            MeasurementGuardConfig config = {});

  std::size_t periods() const { return reference_.size(); }

  struct Admitted {
    double value = 0.0;
    bool degraded = false;  ///< value is synthesized or altered, not raw
  };

  /// Sanitize one period's measured aggregate (`std::nullopt` = the sample
  /// never arrived). Periods cycle day over day; call once per period.
  Admitted admit(std::size_t period, std::optional<double> measured);

  // Monotone counters (all-zero on a clean run).
  std::size_t gaps_filled() const { return gaps_filled_; }
  std::size_t nan_rejected() const { return nan_rejected_; }
  std::size_t negative_rejected() const { return negative_rejected_; }
  std::size_t spikes_clamped() const { return spikes_clamped_; }

  /// Snapshot per-period fill state and counters (checkpoint support; the
  /// reference profile and config are rebuilt, not serialized).
  MeasurementGuardState export_state() const;

  /// Install a snapshot (period count must match).
  void restore_state(const MeasurementGuardState& state);

 private:
  double fill_gap(std::size_t period);

  std::vector<double> reference_;
  MeasurementGuardConfig config_;
  std::vector<double> last_good_;          ///< per period index
  std::vector<bool> has_last_good_;
  std::vector<std::size_t> gap_streak_;    ///< consecutive gaps per period
  std::size_t gaps_filled_ = 0;
  std::size_t nan_rejected_ = 0;
  std::size_t negative_rejected_ = 0;
  std::size_t spikes_clamped_ = 0;
};

}  // namespace tdp
