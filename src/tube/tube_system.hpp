// TUBE: the end-to-end TDP system (Section VI, Figs. 9-12).
//
// Wires together the network emulator (bottleneck link, per-user traffic
// sources, background traffic — the Fig. 10 topology), the TUBE Optimizer
// (measurement + profiling + price-determination engines) and the TUBE GUI
// agents (price pulls + deferral decisions) into the control loop of
// Fig. 1/9:
//
//   measure usage -> estimate waiting functions -> optimize prices ->
//   publish to GUIs -> users defer -> measure again ...
//
// A phase runs the emulated network for a number of hour-long cycles under
// one pricing regime and reports per-period traffic, per-class deferred
// volumes and billing — the quantities Figs. 11 and 12 plot. Phases reuse
// the same arrival seeds, so TIP and TDP runs are paired and differences
// are attributable to deferral alone.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/fault.hpp"
#include "dynamic/online_pricer.hpp"
#include "math/vector_ops.hpp"
#include "mech/mechanism.hpp"
#include "netsim/traffic.hpp"
#include "tube/gui_agent.hpp"
#include "tube/measurement.hpp"
#include "tube/price_channel.hpp"
#include "tube/profiling.hpp"
#include "tube/rrd.hpp"

namespace tdp {

struct TubeConfig {
  double link_capacity_mbps = 10.0;   ///< Fig. 10's bottleneck
  std::size_t periods = 12;           ///< pricing periods per cycle
  double period_seconds = 300.0;      ///< 5-minute periods, 1-hour cycle
  std::size_t users = 2;

  /// Shared class shapes (index = class id): web, ftp, video.
  std::vector<netsim::TrafficClassConfig> classes;
  /// Per-user arrival-intensity multiplier.
  std::vector<double> user_intensity;
  /// Per-user, per-class patience indices (behavioural ground truth).
  std::vector<std::vector<double>> patience;

  /// Time-of-day intensity profile within a cycle (Fig. 11: high early,
  /// low late).
  netsim::RateProfile profile;

  netsim::BackgroundTraffic::Config background;

  double max_reward = 0.01;        ///< P, $ per MB (= base usage price)
  double base_price_per_mb = 0.01; ///< TIP usage price, $ per MB

  /// Fraction of link capacity the ISP prices against. Below the paper's
  /// 80% rule-of-thumb because the testbed's background traffic (not billed
  /// or priced) also occupies the link.
  double capacity_target = 0.7;

  std::uint64_t seed = 20110620;

  /// Fault plan for chaos experiments: price-pull drops/skew hit the GUI
  /// agents' channel subscriptions, measurement faults hit the aggregate
  /// usage feed into the online pricer. Default: nothing ever fires, and
  /// every phase is bit-identical to a system without the plan.
  FaultPlan fault;
  /// Staleness/retry policy applied to the price channel when faults fire.
  ChannelResilienceConfig resilience;
};

/// The standard testbed configuration used in Section VI's experiment.
TubeConfig default_testbed_config();

class TubeSystem {
 public:
  explicit TubeSystem(TubeConfig config = default_testbed_config());

  struct PhaseReport {
    math::Vector rewards;  ///< schedule in force ($/MB; zeros under TIP)
    std::vector<std::vector<double>> user_period_mb;  ///< [user][period]
    std::vector<double> total_period_mb;
    std::vector<std::vector<double>> class_total_mb;    ///< [user][class]
    std::vector<std::vector<double>> class_deferred_mb; ///< [user][class]
    std::vector<double> user_bill_dollars;
    std::vector<double> user_reward_dollars;
    std::size_t sessions = 0;
    std::size_t deferrals = 0;
    double mean_utilization = 0.0;
  };

  /// Baseline phase: flat (time-independent) pricing. Records the TIP
  /// aggregate into the profiling engine. Fig. 11.
  PhaseReport run_tip(std::size_t cycles);

  /// Control-trial phase: fixed reward schedule, recorded as a TDP window
  /// for waiting-function estimation.
  PhaseReport run_trial(const math::Vector& rewards, std::size_t cycles);

  /// Profile waiting functions from the recorded windows, build the
  /// dynamic pricing model, and run with online-optimized prices. Fig. 12.
  /// Equivalent to run_mechanism with the default (TubeOnline) config.
  PhaseReport run_optimized(std::size_t cycles);

  /// Arena entry point: profile waiting functions as run_optimized does,
  /// then drive the testbed under the configured pricing mechanism. Each
  /// cycle boundary settles the finished day with the mechanism (measured
  /// usage vs the profiled TIP demand) and republishes any new schedule.
  PhaseReport run_mechanism(const mech::MechanismConfig& mechanism,
                            std::size_t cycles);

  const ProfilingEngine& profiler() const { return profiler_; }
  const TubeConfig& config() const { return config_; }

  /// Price history RRD (per-period average published reward).
  const RrdStore& price_history() const { return price_rrd_; }

 private:
  PhaseReport run_phase(const math::Vector* fixed_rewards,
                        mech::PricingMechanism* mechanism,
                        std::size_t cycles);

  /// The profiled dynamic model run_optimized prices against (waiting
  /// functions from the recorded TIP/TDP windows, ISP capacity target,
  /// infeasibility shrink).
  DynamicModel build_priced_model();

  TubeConfig config_;
  ProfilingEngine profiler_;
  RrdStore price_rrd_;
  /// Wall-clock seconds elapsed across all phases (each phase's simulator
  /// starts at 0; the RRD timeline is continuous).
  double elapsed_s_ = 0.0;
};

}  // namespace tdp
