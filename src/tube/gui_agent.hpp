// TUBE GUI user agent.
//
// Stands in for a human reacting to the prices shown by the TUBE GUI: when
// a session wants to start in period i, the agent looks at the published
// rewards (pulled once per period through the PriceChannel) and defers the
// session by lag L with probability
//
//   q_L = (p_target / P) * (L + 1)^{-beta_class},
//
// scaled down proportionally if the q_L sum above one. This is the paper's
// power law WITHOUT the sum normalization: the patience index scales the
// *total* willingness to defer, so impatient users (large beta) barely
// defer at all — matching Section VI's observation that "user 1 never
// defers due to high patience indices compared to the amount of reward
// offered". (The Section II-V models normalize w so that every class
// defers with total probability p/P at most; that choice makes the ISP-side
// optimization well-posed but cannot express "too impatient to defer at
// any price". The TUBE Optimizer still estimates effective normalized
// parameters from aggregate behaviour — a deliberate model-vs-reality
// mismatch that the online price adaptation absorbs.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "math/vector_ops.hpp"

namespace tdp {

class GuiAgent {
 public:
  /// @param patience   per-class patience indices beta
  /// @param periods    number of pricing periods in the cycle
  /// @param max_reward normalization point P (the full-price reward)
  /// @param seed       deterministic decision stream
  GuiAgent(std::vector<double> patience, std::size_t periods,
           double max_reward, std::uint64_t seed);

  struct Decision {
    std::size_t lag = 0;       ///< 0 = start now
    double reward_rate = 0.0;  ///< reward per MB earned if deferred
  };

  /// Decide whether to defer a session of class `traffic_class` arriving in
  /// period `period` (index within the cycle) under the published rewards.
  Decision decide(std::size_t traffic_class, std::size_t period,
                  const math::Vector& rewards);

  std::size_t classes() const { return patience_.size(); }

  /// Decisions made / deferrals chosen, per class (for reporting).
  std::size_t decisions(std::size_t traffic_class) const;
  std::size_t deferrals(std::size_t traffic_class) const;

 private:
  std::vector<double> patience_;
  std::size_t periods_;
  double max_reward_;
  Rng rng_;
  std::vector<std::size_t> decisions_;
  std::vector<std::size_t> deferrals_;
};

}  // namespace tdp
