// Congestion-dependent pricing on "auto-pilot" (Section VII).
//
// "Time-dependent pricing can be further generalized to congestion-
// dependent pricing when TDP's timescale is very short. Periods may be 30
// seconds ... TDP can be put on 'auto-pilot' mode, where a user need not be
// bothered once he or she specifies a basic configuration, e.g. the
// maximum monthly bill, which applications should never be deferred ...
// there is an opportunity to bridge the 'digital divide' by offering
// extremely affordable, e.g. $5 a month, Internet access plans, where users
// wait for time slots in which congestion conditions and prices are
// sufficiently low."
//
// Two pieces:
//  - CongestionPricer: fast-timescale price rule — the discount (reward)
//    grows linearly as measured utilization falls below a congestion
//    threshold, so quiet slots are cheap and busy slots cost full price.
//  - AutopilotAgent: a policy, not a person: sessions of never-defer
//    classes start immediately; everything else starts only when the
//    current price is at or below the user's configured ceiling, and is
//    otherwise parked until a cheap slot appears. A monthly budget guard
//    tightens the ceiling as spending approaches the budget.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace tdp {

/// Maps measured utilization to a price per MB.
class CongestionPricer {
 public:
  /// @param full_price           price per MB at or above the threshold
  /// @param congestion_threshold utilization above which no discount applies
  /// @param floor_price          price when the link is idle
  CongestionPricer(double full_price, double congestion_threshold,
                   double floor_price);

  /// Current price per MB for a measured utilization in [0, 1].
  double price(double utilization) const;

  double full_price() const { return full_price_; }
  double floor_price() const { return floor_price_; }

 private:
  double full_price_;
  double threshold_;
  double floor_price_;
};

/// The auto-pilot policy: start-or-wait decisions plus budget tracking.
class AutopilotAgent {
 public:
  struct Config {
    double max_monthly_bill = 5.0;   ///< dollars
    double price_ceiling = 0.002;    ///< $/MB the user is willing to pay
    std::vector<bool> never_defer;   ///< per traffic class
  };

  explicit AutopilotAgent(Config config);

  /// Should a session of `traffic_class` start at the current price?
  bool should_start(std::size_t traffic_class, double price_per_mb) const;

  /// Record `mb` delivered at `price_per_mb`.
  void record_usage(double mb, double price_per_mb);

  /// Effective ceiling after the budget guard: as spending approaches the
  /// monthly budget, the ceiling shrinks toward the free tier.
  double effective_ceiling() const;

  double spent() const { return spent_; }
  double usage_mb() const { return usage_mb_; }
  const Config& config() const { return config_; }

 private:
  Config config_;
  double spent_ = 0.0;
  double usage_mb_ = 0.0;
};

}  // namespace tdp
