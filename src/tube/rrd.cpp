#include "tube/rrd.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tdp {

RrdStore::RrdStore(double step_seconds, std::size_t buckets)
    : step_(step_seconds), ring_(buckets) {
  TDP_REQUIRE(step_seconds > 0.0, "step must be positive");
  TDP_REQUIRE(buckets > 0, "need at least one bucket");
}

std::size_t RrdStore::slot_for(long long bucket_index) const {
  const long long m = static_cast<long long>(ring_.size());
  return static_cast<std::size_t>(((bucket_index % m) + m) % m);
}

void RrdStore::add(double time_s, double value) {
  const long long bucket = static_cast<long long>(std::floor(time_s / step_));
  TDP_REQUIRE(!any_ || bucket + 1 >= newest_bucket_,
              "samples must be (approximately) time-ordered");

  if (!any_ || bucket > newest_bucket_) {
    // Zero out every bucket between the old newest and the new one — those
    // intervals had no samples and their ring slots hold stale data.
    const long long start = any_ ? newest_bucket_ + 1 : bucket;
    for (long long b = start; b <= bucket; ++b) {
      Bucket& slot = ring_[slot_for(b)];
      slot = Bucket{static_cast<double>(b) * step_, 0.0, 0};
    }
    newest_bucket_ = bucket;
    any_ = true;
  }

  Bucket& slot = ring_[slot_for(bucket)];
  const double expected_start = static_cast<double>(bucket) * step_;
  if (slot.samples == 0 || slot.start_s != expected_start) {
    // A backwards-jitter write can land on a slot never initialized for
    // this bucket (it was skipped when the newer bucket arrived first).
    slot = Bucket{expected_start, 0.0, 0};
  }
  // Running average.
  slot.average = (slot.average * static_cast<double>(slot.samples) + value) /
                 static_cast<double>(slot.samples + 1);
  ++slot.samples;
}

std::vector<RrdStore::Bucket> RrdStore::series() const {
  std::vector<Bucket> out;
  if (!any_) return out;
  const long long m = static_cast<long long>(ring_.size());
  const long long oldest = newest_bucket_ - m + 1;
  for (long long b = oldest; b <= newest_bucket_; ++b) {
    const Bucket& slot = ring_[slot_for(b)];
    const double expected_start = static_cast<double>(b) * step_;
    if (slot.samples > 0 && slot.start_s == expected_start) {
      out.push_back(slot);
    }
  }
  return out;
}

}  // namespace tdp
