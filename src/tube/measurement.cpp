#include "tube/measurement.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/registry.hpp"

namespace tdp {

MeasurementEngine::MeasurementEngine(std::size_t users, std::size_t classes)
    : users_(users), classes_(classes), baseline_(users * classes, 0.0) {
  TDP_REQUIRE(users >= 1 && classes >= 1, "need users and classes");
}

std::size_t MeasurementEngine::index(std::size_t user,
                                     std::size_t traffic_class) const {
  TDP_REQUIRE(user < users_ && traffic_class < classes_,
              "user/class out of range");
  return user * classes_ + traffic_class;
}

void MeasurementEngine::close_period(const netsim::BottleneckLink& link) {
  std::vector<double> cumulative(users_ * classes_, 0.0);
  for (std::size_t u = 0; u < users_; ++u) {
    for (std::size_t c = 0; c < classes_; ++c) {
      cumulative[index(u, c)] = link.served_mb(u, c);
    }
  }
  close_period(cumulative);
}

void MeasurementEngine::close_period(const std::vector<double>& cumulative) {
  TDP_REQUIRE(cumulative.size() == users_ * classes_,
              "cumulative counter size mismatch");
  std::vector<double> usage(users_ * classes_, 0.0);
  for (std::size_t k = 0; k < cumulative.size(); ++k) {
    const double counter = cumulative[k];
    if (!std::isfinite(counter)) {
      // Broken exporter: drop the sample, keep the old baseline so the
      // next good counter yields the union of both periods' usage.
      reject_sample(k, counter);
      continue;
    }
    const double delta = counter - baseline_[k];
    if (delta < 0.0) {
      // Counter reset: the delta is meaningless; re-baseline and move on.
      reject_sample(k, delta);
      baseline_[k] = counter;
      continue;
    }
    usage[k] = delta;
    baseline_[k] = counter;
  }
  per_period_.push_back(std::move(usage));
}

void MeasurementEngine::reject_sample(std::size_t flat_index, double value) {
  ++rejected_samples_;
  static obs::Counter& rejected =
      obs::Registry::global().counter("measurement.rejected_samples_total");
  rejected.add_always(1);
  // Rate-limited: warn on the 1st, 2nd, 4th, 8th, ... rejection so a
  // persistently sick exporter cannot flood the log.
  TDP_LOG_EVERY_POW2(::tdp::LogLevel::kWarn, rejected_samples_)
      << "measurement: rejected sample for (user " << flat_index / classes_
      << ", class " << flat_index % classes_ << ") value " << value << " ("
      << rejected_samples_ << " rejected so far)";
}

double MeasurementEngine::usage_mb(std::size_t period, std::size_t user,
                                   std::size_t traffic_class) const {
  TDP_REQUIRE(period < per_period_.size(), "period not recorded");
  return per_period_[period][index(user, traffic_class)];
}

double MeasurementEngine::user_usage_mb(std::size_t period,
                                        std::size_t user) const {
  TDP_REQUIRE(period < per_period_.size(), "period not recorded");
  double total = 0.0;
  for (std::size_t c = 0; c < classes_; ++c) {
    total += per_period_[period][index(user, c)];
  }
  return total;
}

double MeasurementEngine::total_usage_mb(std::size_t period) const {
  TDP_REQUIRE(period < per_period_.size(), "period not recorded");
  double total = 0.0;
  for (double v : per_period_[period]) total += v;
  return total;
}

std::vector<double> MeasurementEngine::total_series() const {
  std::vector<double> out(per_period_.size(), 0.0);
  for (std::size_t i = 0; i < per_period_.size(); ++i) {
    out[i] = total_usage_mb(i);
  }
  return out;
}

std::vector<double> MeasurementEngine::user_series(std::size_t user) const {
  std::vector<double> out(per_period_.size(), 0.0);
  for (std::size_t i = 0; i < per_period_.size(); ++i) {
    out[i] = user_usage_mb(i, user);
  }
  return out;
}

void MeasurementEngine::reset(const netsim::BottleneckLink& link) {
  per_period_.clear();
  for (std::size_t u = 0; u < users_; ++u) {
    for (std::size_t c = 0; c < classes_; ++c) {
      baseline_[index(u, c)] = link.served_mb(u, c);
    }
  }
}

}  // namespace tdp
