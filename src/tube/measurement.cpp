#include "tube/measurement.hpp"

#include "common/error.hpp"

namespace tdp {

MeasurementEngine::MeasurementEngine(std::size_t users, std::size_t classes)
    : users_(users), classes_(classes), baseline_(users * classes, 0.0) {
  TDP_REQUIRE(users >= 1 && classes >= 1, "need users and classes");
}

std::size_t MeasurementEngine::index(std::size_t user,
                                     std::size_t traffic_class) const {
  TDP_REQUIRE(user < users_ && traffic_class < classes_,
              "user/class out of range");
  return user * classes_ + traffic_class;
}

void MeasurementEngine::close_period(const netsim::BottleneckLink& link) {
  std::vector<double> usage(users_ * classes_, 0.0);
  for (std::size_t u = 0; u < users_; ++u) {
    for (std::size_t c = 0; c < classes_; ++c) {
      const double cumulative = link.served_mb(u, c);
      const std::size_t k = index(u, c);
      usage[k] = cumulative - baseline_[k];
      baseline_[k] = cumulative;
    }
  }
  per_period_.push_back(std::move(usage));
}

double MeasurementEngine::usage_mb(std::size_t period, std::size_t user,
                                   std::size_t traffic_class) const {
  TDP_REQUIRE(period < per_period_.size(), "period not recorded");
  return per_period_[period][index(user, traffic_class)];
}

double MeasurementEngine::user_usage_mb(std::size_t period,
                                        std::size_t user) const {
  TDP_REQUIRE(period < per_period_.size(), "period not recorded");
  double total = 0.0;
  for (std::size_t c = 0; c < classes_; ++c) {
    total += per_period_[period][index(user, c)];
  }
  return total;
}

double MeasurementEngine::total_usage_mb(std::size_t period) const {
  TDP_REQUIRE(period < per_period_.size(), "period not recorded");
  double total = 0.0;
  for (double v : per_period_[period]) total += v;
  return total;
}

std::vector<double> MeasurementEngine::total_series() const {
  std::vector<double> out(per_period_.size(), 0.0);
  for (std::size_t i = 0; i < per_period_.size(); ++i) {
    out[i] = total_usage_mb(i);
  }
  return out;
}

std::vector<double> MeasurementEngine::user_series(std::size_t user) const {
  std::vector<double> out(per_period_.size(), 0.0);
  for (std::size_t i = 0; i < per_period_.size(); ++i) {
    out[i] = user_usage_mb(i, user);
  }
  return out;
}

void MeasurementEngine::reset(const netsim::BottleneckLink& link) {
  per_period_.clear();
  for (std::size_t u = 0; u < users_; ++u) {
    for (std::size_t c = 0; c < classes_; ++c) {
      baseline_[index(u, c)] = link.served_mb(u, c);
    }
  }
}

}  // namespace tdp
