#include "mech/flat_tip.hpp"

#include <utility>

namespace tdp::mech {
namespace {

std::vector<double> model_tip_demand(const DynamicModel& model) {
  const math::Vector tip = model.arrivals().tip_demand_vector();
  return std::vector<double>(tip.begin(), tip.end());
}

}  // namespace

FlatTipMechanism::FlatTipMechanism(DynamicModel model)
    : PricingMechanism(model_tip_demand(model), model.reward_cap()),
      rewards_(model.periods(), 0.0),
      tip_cost_(model.tip_cost()) {}

SettleInfo FlatTipMechanism::settle_day(const DaySettlement& day) {
  SettleInfo info;
  info.budget_spent = day.reward_paid_units;  // always 0: nothing published
  return info;
}

}  // namespace tdp::mech
