// The pluggable pricing-mechanism arena (DESIGN.md §13).
//
// A PricingMechanism is the contract every incentive scheme in the arena
// implements against the fleet control loop:
//
//   * publish  — rewards() is the schedule the fleet's PriceChannel pushes
//                to users each period (cyclic by period index);
//   * observe  — observe_period / observe_missed feed the per-period
//                measured aggregate back (the same guarded telemetry path
//                the online pricer consumes; faults hit every mechanism at
//                the same sites);
//   * settle   — settle_day closes the books on one simulated day: the
//                mechanism sees the day's offered/realized profiles and the
//                rewards actually paid, and may rewrite its schedule for
//                the next day.
//
// Implementations (one file each):
//
//   TubeOnlineMechanism   the paper's §III-B online pricer, wrapped. The
//                         default — a fleet run with a default
//                         MechanismConfig is bit-identical to the
//                         pre-arena driver.
//   FlatTipMechanism      time-independent pricing: zero rewards forever.
//                         The do-nothing control every comparison is
//                         anchored to (P2A reduction is 0 by construction).
//   FixedBudgetRebate     arXiv:1305.6971-style: a fixed daily reward pool
//                         split across periods in proportion to observed
//                         deferred traffic; per-unit rates follow from the
//                         pool share over the period's inflow.
//   DayAheadOracle        ground-truth upper bound: solves the full-day
//                         reward vector offline against the *true* fluid
//                         model (the same waiting functions the population
//                         samples from), with a refined smoothing/iteration
//                         schedule, then never moves.
//
// Determinism: mechanisms are pure functions of their constructor inputs
// and the observe/settle sequence — no clocks, no RNG — so every mechanism
// inherits the fleet's bitwise thread-count independence for free.
// Mechanisms do not touch the obs registry; journaling the publish/settle
// events is the drivers' job (they know day/period context).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "dynamic/dynamic_model.hpp"
#include "dynamic/dynamic_optimizer.hpp"
#include "dynamic/online_pricer.hpp"
#include "math/vector_ops.hpp"

namespace tdp::mech {

enum class MechanismKind : std::uint32_t {
  kTubeOnline = 0,        ///< §III-B online pricer (the default)
  kFlatTip = 1,           ///< time-independent pricing, zero rewards
  kFixedBudgetRebate = 2, ///< fixed daily pool split by deferred traffic
  kDayAheadOracle = 3,    ///< exact day-ahead solve on the true model
};

const char* to_string(MechanismKind kind);

/// Per-run mechanism selection + knobs. Only the fields of the selected
/// kind matter; the rest are ignored (and excluded from checkpoint
/// config-echo comparison for other kinds).
struct MechanismConfig {
  MechanismKind kind = MechanismKind::kTubeOnline;

  /// Rebate: the fixed daily reward pool, in reward-rate x demand units
  /// (the same money units as FleetMetrics::reward_paid_units).
  /// 0 = derive as 15% of the model's TIP cost.
  double rebate_pool = 0.0;
  /// Rebate: EWMA weight pulling the pool split toward the observed
  /// deferred-traffic shares at each settle (0 = frozen initial split,
  /// 1 = last day only).
  double rebate_share_blend = 0.3;
  /// Rebate: inflow floor as a fraction of the mean per-period TIP demand;
  /// keeps per-unit rates finite on periods that drew no deferrals.
  double rebate_inflow_floor = 0.05;
  /// Oracle: tighten the offline solve (more FISTA iterations, smaller
  /// final smoothing) beyond the online pricer's own offline options.
  bool oracle_refine = true;
  /// Oracle: fraction of the model's capacity the day-ahead solve prices
  /// against (the ISP capacity-target rule-of-thumb, TubeConfig style).
  /// Below 1 the oracle flattens the whole peak, not just the
  /// backlog-cost-positive excess; 1 = price the raw capacity.
  double oracle_capacity_target = 0.85;
};

/// One day's aggregates handed to settle_day, in demand units.
struct DaySettlement {
  std::vector<double> offered_units;   ///< pre-deferral (TIP) per period
  std::vector<double> realized_units;  ///< post-deferral per period
  double reward_paid_units = 0.0;      ///< rewards actually paid today
};

/// What settle_day did.
struct SettleInfo {
  bool schedule_changed = false;  ///< next day publishes a new schedule
  double budget_spent = 0.0;      ///< today's payout (budgeted mechanisms)
  double budget_pool = 0.0;       ///< the daily pool (0 = unbudgeted)
  /// A blackout settle: the day's telemetry was too damaged to judge, so
  /// the books were carried (rebate pacing hold). Pacing monitors skip
  /// held settles instead of alerting on the frozen spend/pool ratio.
  bool books_held = false;
};

/// The serializable slice of a mechanism's mutable state (checkpoints).
/// TubeOnline serializes through OnlinePricerState instead; the others
/// round-trip through this generic container.
struct MechanismState {
  math::Vector rewards;
  std::vector<double> scalars;
  std::vector<std::vector<double>> vectors;
};

class PricingMechanism {
 public:
  virtual ~PricingMechanism() = default;

  PricingMechanism(const PricingMechanism&) = delete;
  PricingMechanism& operator=(const PricingMechanism&) = delete;

  virtual MechanismKind kind() const = 0;
  const char* name() const { return to_string(kind()); }
  std::size_t periods() const { return tip_demand_.size(); }

  /// The model's expected TIP demand per period — the measurement guard's
  /// prior and the settle-time "offered" reference for driver code that
  /// has no per-period accumulators of its own.
  const std::vector<double>& tip_demand() const { return tip_demand_; }
  double reward_cap() const { return reward_cap_; }

  /// The schedule currently published (cyclic by period index).
  virtual const math::Vector& rewards() const = 0;

  /// Feed back the period's measured aggregate (guard-admitted demand
  /// units). `degraded` marks synthesized/altered input; `iteration_budget`
  /// caps any solve this observation triggers.
  virtual void observe_period(std::size_t period, double measured_units,
                              bool degraded, std::size_t iteration_budget) = 0;

  /// The period's measurement never arrived (telemetry blackout).
  virtual void observe_missed(std::size_t period) = 0;

  /// Close the books on one simulated day; may rewrite rewards().
  virtual SettleInfo settle_day(const DaySettlement& day) = 0;

  /// Health ladder: meaningful for TubeOnline, trivially HEALTHY for the
  /// schedule-frozen mechanisms (nothing a bad observation could break).
  virtual PricerHealth health() const { return PricerHealth::kHealthy; }
  virtual const PricerHealthStats* health_stats() const { return nullptr; }

  /// The mechanism's own estimate of the ISP's daily cost at its current
  /// schedule (0 when the mechanism carries no cost model).
  virtual double expected_cost() const { return 0.0; }

  /// Default per-observation solve budget (the fault injector's starvation
  /// draw overrides it).
  virtual std::size_t solver_budget() const {
    return PricerGuardConfig{}.solver_max_iterations;
  }

  /// The wrapped OnlinePricer, or nullptr for every other mechanism.
  /// Callers that need §III-B specifics (re-anchoring, health statistics,
  /// OnlinePricerState checkpoints) gate on this.
  virtual OnlinePricer* online_pricer() { return nullptr; }
  const OnlinePricer* online_pricer() const {
    return const_cast<PricingMechanism*>(this)->online_pricer();
  }

  /// Checkpoint hooks for the non-TubeOnline mechanisms: export captures
  /// everything observe/settle mutate; restore installs it bit-for-bit.
  virtual MechanismState export_state() const;
  virtual void restore_state(const MechanismState& state);

 protected:
  PricingMechanism(std::vector<double> tip_demand, double reward_cap);

  std::vector<double> tip_demand_;
  double reward_cap_ = 0.0;
};

/// Build the configured mechanism against the true fluid model (the same
/// model FleetDriver's offline solve uses). `offline_options`/`guard`
/// parameterize TubeOnline exactly as the pre-arena driver did; the oracle
/// refines `offline_options` per config.oracle_refine.
std::unique_ptr<PricingMechanism> make_mechanism(
    const MechanismConfig& config, DynamicModel model,
    const DynamicOptimizerOptions& offline_options,
    const PricerGuardConfig& guard);

/// Steady-state daily backlog cost of a realized traffic profile: the
/// day-cyclic hinge recursion B_i = max(B_{i-1} + profile_i - capacity_i, 0)
/// warmed over `warmup_days` identical days, costing the final day. The
/// arena's ISP-cost metric applies this to each mechanism's *measured*
/// realized profile (plus rewards paid), so mechanisms are compared on what
/// the fleet actually did, not on their own models.
double profile_backlog_cost(const std::vector<double>& profile,
                            const std::vector<double>& capacity,
                            const math::PiecewiseLinearCost& cost,
                            std::size_t warmup_days = 6);

}  // namespace tdp::mech
