#include "mech/tube_online.hpp"

#include <utility>

#include "common/error.hpp"

namespace tdp::mech {
namespace {

std::vector<double> model_tip_demand(const DynamicModel& model) {
  const math::Vector tip = model.arrivals().tip_demand_vector();
  return std::vector<double>(tip.begin(), tip.end());
}

}  // namespace

TubeOnlineMechanism::TubeOnlineMechanism(
    DynamicModel model, const DynamicOptimizerOptions& offline_options,
    const PricerGuardConfig& guard)
    : PricingMechanism(model_tip_demand(model), model.reward_cap()) {
  pricer_ = std::make_unique<OnlinePricer>(std::move(model), offline_options,
                                           /*speculative=*/false, guard);
}

TubeOnlineMechanism::TubeOnlineMechanism(std::unique_ptr<OnlinePricer> pricer)
    : PricingMechanism(model_tip_demand(pricer->model()),
                       pricer->model().reward_cap()) {
  pricer_ = std::move(pricer);
}

SettleInfo TubeOnlineMechanism::settle_day(const DaySettlement& day) {
  SettleInfo info;
  info.budget_spent = day.reward_paid_units;
  return info;  // continuous adjustment; the day boundary changes nothing
}

void TubeOnlineMechanism::restore_state(const MechanismState&) {
  TDP_REQUIRE(false,
              "tube_online restores through OnlinePricerState, not "
              "MechanismState");
}

}  // namespace tdp::mech
