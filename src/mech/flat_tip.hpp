// FlatTipMechanism: time-independent pricing — the arena's control arm.
//
// Publishes an all-zero reward schedule forever: no user ever defers, the
// realized profile equals the offered profile, and the P2A reduction is 0
// by construction. expected_cost() is the model's TIP cost, so the arena
// can report the do-nothing ISP cost from the same source as the priced
// mechanisms.
#pragma once

#include "mech/mechanism.hpp"

namespace tdp::mech {

class FlatTipMechanism final : public PricingMechanism {
 public:
  explicit FlatTipMechanism(DynamicModel model);

  MechanismKind kind() const override { return MechanismKind::kFlatTip; }
  const math::Vector& rewards() const override { return rewards_; }

  void observe_period(std::size_t, double, bool, std::size_t) override {}
  void observe_missed(std::size_t) override {}
  SettleInfo settle_day(const DaySettlement& day) override;

  double expected_cost() const override { return tip_cost_; }

 private:
  math::Vector rewards_;
  double tip_cost_ = 0.0;
};

}  // namespace tdp::mech
