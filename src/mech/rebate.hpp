// FixedBudgetRebateMechanism: a fixed daily reward pool split across
// periods in proportion to deferred traffic (the arXiv:1305.6971
// comparison arm).
//
// The ISP commits to a daily budget R (money units — reward rate x demand
// units, the same units as FleetMetrics::reward_paid_units). Each period p
// carries a share s_p of the pool (Σ s_p = 1) and publishes the per-unit
// rate
//
//   r_p = clamp(R * s_p / max(I_p, room_p, floor), 0, reward_cap)
//
// where I_p is the period's expected deferred *inflow* (extra work arriving
// at p because users moved it there) and room_p = max(0, mean - tip_p) is
// the valley's depth under the TIP mean. More traffic crowding into a
// period dilutes its rate; an empty valley's rate rises toward the envelope
// rate R*s_p/room_p — the budget-conserving feedback the rebate literature
// studies. Keeping room_p in the denominator is what makes the budget
// *fixed*: a valley cannot absorb more than its depth without minting a new
// peak, so pricing against the room envelope bounds the realized payout by
// ~R even when a day's measured inflow comes in near zero (a raw 1/I_p
// re-fit whipsaws — one weak day sends every rate to the cap and the next
// day's payout to a multiple of the pool).
//
// Day over day the shares track reality: settle_day measures the realized
// inflow I_p = max(0, realized_p - offered_p), blends the observed shares
// into s_p with an EWMA (rebate_share_blend), renormalizes, and recomputes
// the rates. Before any settle, shares seed from valley depth (room_p,
// normalized) — a deterministic, model-free prior.
//
// On top of the envelope, a multiplicative pacing controller closes the
// loop on actual spend: each settle rescales every rate by the day's
// pool/paid ratio (step clamped to [1/2, 2] per day, cumulative scale to
// [0.1, 10]), so the realized payout converges to the pool from either
// side — the mechanism needs no demand-elasticity model to pace its
// budget, only yesterday's bill.
//
// The published rates change only at day boundaries: within a day the
// schedule is frozen (observe_period is a no-op), so the mechanism is
// trivially healthy and needs no solver budget.
//
// Blackout hold: the pacing controller and the share/gain EWMAs all learn
// from *observed* inflow, which a measurement blackout zeroes — a settle on
// a blacked-out day would read "nobody deferred", crank spend_scale_ up
// sqrt(pool/paid)-fast, and overspend the pool the day the lights come
// back. So any day with at least one missed measurement settles on hold:
// the books are kept (paid_total_, days_settled_) but the learned state —
// shares, gains, pacing factor, and the published schedule itself — is
// frozen at its last-known value until a fully-observed day settles.
#pragma once

#include "mech/mechanism.hpp"

namespace tdp::mech {

class FixedBudgetRebateMechanism final : public PricingMechanism {
 public:
  FixedBudgetRebateMechanism(DynamicModel model,
                             const MechanismConfig& config);

  MechanismKind kind() const override {
    return MechanismKind::kFixedBudgetRebate;
  }
  const math::Vector& rewards() const override { return rewards_; }

  void observe_period(std::size_t, double, bool, std::size_t) override {}
  void observe_missed(std::size_t) override { ++missed_periods_today_; }
  SettleInfo settle_day(const DaySettlement& day) override;

  MechanismState export_state() const override;
  void restore_state(const MechanismState& state) override;

  double pool() const { return pool_; }
  double paid_total() const { return paid_total_; }
  std::uint64_t days_settled() const { return days_settled_; }
  const std::vector<double>& shares() const { return shares_; }
  double spend_scale() const { return spend_scale_; }
  std::uint64_t held_settles() const { return held_settles_; }

 private:
  void rates_from_inflow(const std::vector<double>& inflow);

  math::Vector rewards_;
  std::vector<double> shares_;  ///< pool split per period, sums to 1
  std::vector<double> room_;    ///< valley depth under the TIP mean
  std::vector<double> gain_;    ///< learned inflow per unit rate
  double pool_ = 0.0;
  double inflow_floor_ = 0.0;
  double share_blend_ = 0.0;
  double spend_scale_ = 1.0;  ///< pacing controller state, paid -> pool
  double paid_total_ = 0.0;
  std::uint64_t days_settled_ = 0;
  std::uint64_t missed_periods_today_ = 0;  ///< blackout gaps since settle
  std::uint64_t held_settles_ = 0;          ///< settles frozen by blackouts
};

}  // namespace tdp::mech
