#include "mech/oracle.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace tdp::mech {
namespace {

std::vector<double> model_tip_demand(const DynamicModel& model) {
  const math::Vector tip = model.arrivals().tip_demand_vector();
  return std::vector<double>(tip.begin(), tip.end());
}

}  // namespace

DayAheadOracleMechanism::DayAheadOracleMechanism(
    DynamicModel model, const DynamicOptimizerOptions& offline_options,
    const MechanismConfig& config)
    : PricingMechanism(model_tip_demand(model), model.reward_cap()),
      model_(std::move(model)),
      options_(offline_options) {
  TDP_REQUIRE(config.oracle_capacity_target > 0.0 &&
                  config.oracle_capacity_target <= 1.0,
              "oracle capacity target must be in (0, 1]");
  capacity_target_ = config.oracle_capacity_target;
  if (config.oracle_refine) {
    options_.fista.max_iterations =
        std::max<std::size_t>(options_.fista.max_iterations, 12000);
    options_.mu_final = std::min(options_.mu_final, 1e-6);
  }
  const DynamicPricingSolution solution =
      optimize_dynamic_prices(priced_model(model_.arrivals()), options_);
  rewards_ = solution.rewards;
  expected_cost_ = model_.total_cost(rewards_);
  converged_ = solution.converged;
  solve_iterations_ = solution.iterations;
}

DynamicModel DayAheadOracleMechanism::priced_model(
    DemandProfile demand) const {
  std::vector<double> capacity = model_.capacity();
  double total_capacity = 0.0;
  for (const double c : capacity) total_capacity += c;
  // Tightening must keep the day feasible (total demand strictly under
  // total capacity) or no cyclic steady state exists; back the target off
  // to a 5% headroom over the demand's own load factor when needed.
  double factor = capacity_target_;
  if (total_capacity > 0.0) {
    factor = std::max(factor, 1.05 * demand.total_demand() / total_capacity);
  }
  factor = std::min(factor, 1.0);
  for (double& c : capacity) c *= factor;
  return DynamicModel(std::move(demand), std::move(capacity),
                      model_.backlog_cost(), model_.warmup_days());
}

SettleInfo DayAheadOracleMechanism::settle_day(const DaySettlement& day) {
  SettleInfo info;
  info.budget_spent = day.reward_paid_units;
  TDP_REQUIRE(day.offered_units.size() == periods(),
              "settlement profile size mismatch");

  // Perfect day-ahead information: offered demand does not depend on the
  // published rewards, so today's observed profile is exactly what
  // tomorrow brings. Rescale the model's expected demand to it and
  // re-solve the whole day.
  DemandProfile demand = model_.arrivals();
  for (std::size_t p = 0; p < periods(); ++p) {
    if (tip_demand_[p] > 0.0) {
      demand.scale_period(p, day.offered_units[p] / tip_demand_[p]);
    }
  }
  const DynamicPricingSolution solution =
      optimize_dynamic_prices(priced_model(std::move(demand)), options_);
  converged_ = solution.converged;
  solve_iterations_ = solution.iterations;
  expected_cost_ = model_.total_cost(solution.rewards);
  info.schedule_changed = !(solution.rewards == rewards_);
  rewards_ = solution.rewards;
  return info;
}

void DayAheadOracleMechanism::restore_state(const MechanismState& state) {
  PricingMechanism::restore_state(state);
  rewards_ = state.rewards;
}

}  // namespace tdp::mech
