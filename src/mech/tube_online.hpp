// TubeOnlineMechanism: the §III-B OnlinePricer as an arena mechanism.
//
// A thin forwarding wrapper — constructing one with the driver's model,
// offline options, and guard runs the same offline solve and publishes the
// same schedule as the pre-arena FleetDriver, and every observe call
// forwards unchanged, so a default-config fleet day is bit-identical to
// the pre-arena driver's. settle_day is a no-op: the online pricer adjusts
// continuously, there is nothing left to do at the day boundary.
//
// Checkpointing goes through OnlinePricerState (export_state/restore on
// the wrapped pricer), not the generic MechanismState: the pricer's health
// ladder and demand volumes have richer structure than the generic
// container carries. The restore constructor accepts an already-restored
// pricer for that path.
#pragma once

#include <memory>

#include "mech/mechanism.hpp"

namespace tdp::mech {

class TubeOnlineMechanism final : public PricingMechanism {
 public:
  TubeOnlineMechanism(DynamicModel model,
                      const DynamicOptimizerOptions& offline_options,
                      const PricerGuardConfig& guard);
  /// Restore path: adopt a pricer rebuilt via OnlinePricer::restore.
  explicit TubeOnlineMechanism(std::unique_ptr<OnlinePricer> pricer);

  MechanismKind kind() const override { return MechanismKind::kTubeOnline; }
  const math::Vector& rewards() const override { return pricer_->rewards(); }

  void observe_period(std::size_t period, double measured_units,
                      bool degraded, std::size_t iteration_budget) override {
    pricer_->observe_period_ex(period, measured_units, degraded,
                               iteration_budget);
  }
  void observe_missed(std::size_t period) override {
    pricer_->observe_missed(period);
  }
  SettleInfo settle_day(const DaySettlement& day) override;

  PricerHealth health() const override { return pricer_->health(); }
  const PricerHealthStats* health_stats() const override {
    return &pricer_->health_stats();
  }
  double expected_cost() const override { return pricer_->expected_cost(); }
  std::size_t solver_budget() const override {
    return pricer_->guard().solver_max_iterations;
  }
  OnlinePricer* online_pricer() override { return pricer_.get(); }

  /// TubeOnline checkpoints through OnlinePricerState; the generic restore
  /// hook is a contract violation, not a fallback.
  void restore_state(const MechanismState& state) override;

 private:
  std::unique_ptr<OnlinePricer> pricer_;
};

}  // namespace tdp::mech
