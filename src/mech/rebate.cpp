#include "mech/rebate.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/error.hpp"

namespace tdp::mech {
namespace {

constexpr double kDefaultPoolTipCostFraction = 0.10;
/// Overfill guard: cap each rate so predicted inflow (response gain x
/// rate) stays inside this fraction of the valley's room.
constexpr double kTargetFillFraction = 0.8;
/// EWMA weight for the per-period response-gain estimate.
constexpr double kGainBlend = 0.5;

std::vector<double> model_tip_demand(const DynamicModel& model) {
  const math::Vector tip = model.arrivals().tip_demand_vector();
  return std::vector<double>(tip.begin(), tip.end());
}

}  // namespace

FixedBudgetRebateMechanism::FixedBudgetRebateMechanism(
    DynamicModel model, const MechanismConfig& config)
    : PricingMechanism(model_tip_demand(model), model.reward_cap()),
      rewards_(model.periods(), 0.0) {
  TDP_REQUIRE(config.rebate_pool >= 0.0 &&
                  config.rebate_share_blend >= 0.0 &&
                  config.rebate_share_blend <= 1.0 &&
                  config.rebate_inflow_floor > 0.0,
              "invalid rebate configuration");
  const std::size_t n = periods();
  pool_ = config.rebate_pool > 0.0
              ? config.rebate_pool
              : kDefaultPoolTipCostFraction * model.tip_cost();
  share_blend_ = config.rebate_share_blend;

  const double mean =
      std::accumulate(tip_demand_.begin(), tip_demand_.end(), 0.0) /
      static_cast<double>(n);
  inflow_floor_ = config.rebate_inflow_floor * mean;
  TDP_REQUIRE(inflow_floor_ > 0.0, "rebate needs positive expected demand");

  // Seed shares from valley depth under TIP: deferral can only move work
  // into periods with room below the mean, and deeper valleys absorb more.
  // The room profile doubles as the inflow envelope — a valley cannot
  // absorb more than its depth without minting a new peak — so per-unit
  // rates computed against it keep the realized payout bounded by the
  // pool (the fixed-budget contract), instead of exploding when a day's
  // measured inflow comes in low.
  room_.assign(n, 0.0);
  double total_room = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    room_[p] = std::max(mean - tip_demand_[p], 0.0);
    total_room += room_[p];
  }
  shares_.assign(n, 1.0 / static_cast<double>(n));
  if (total_room > 0.0) {
    for (std::size_t p = 0; p < n; ++p) shares_[p] = room_[p] / total_room;
  }
  gain_.assign(n, 0.0);  // unknown until the first settle observes a day

  rates_from_inflow(std::vector<double>(n, 0.0));
}

void FixedBudgetRebateMechanism::rates_from_inflow(
    const std::vector<double>& inflow) {
  const std::size_t n = periods();
  for (std::size_t p = 0; p < n; ++p) {
    if (room_[p] <= 0.0) {
      rewards_[p] = 0.0;  // above-mean periods are never rebate-eligible
      continue;
    }
    const double envelope =
        std::max({inflow[p], room_[p], inflow_floor_});
    double rate = spend_scale_ * pool_ * shares_[p] / envelope;
    // Overfill guard: proportional allocation alone pays the same per-unit
    // rate wherever deferrers land (share and inflow cancel), so nothing
    // stops one valley from overfilling past the original peak. Cap the
    // rate so the *predicted* inflow — the period's estimated response
    // gain times the rate — stays inside a fraction of the valley's room.
    if (gain_[p] > 0.0) {
      rate = std::min(rate, kTargetFillFraction * room_[p] / gain_[p]);
    }
    rewards_[p] = std::clamp(rate, 0.0, reward_cap_);
  }
}

SettleInfo FixedBudgetRebateMechanism::settle_day(const DaySettlement& day) {
  const std::size_t n = periods();
  TDP_REQUIRE(day.offered_units.size() == n &&
                  day.realized_units.size() == n,
              "settlement profile size mismatch");

  // Blackout hold: a day with missing measurements reads as "nobody
  // deferred" and would whipsaw the pacing controller (see header). Keep
  // the books, freeze everything learned, and wait for a fully-observed
  // day before updating shares/gains/pacing or re-fitting the rates.
  if (missed_periods_today_ > 0) {
    missed_periods_today_ = 0;
    ++held_settles_;
    paid_total_ += day.reward_paid_units;
    ++days_settled_;
    SettleInfo held;
    held.schedule_changed = false;
    held.budget_spent = day.reward_paid_units;
    held.budget_pool = pool_;
    held.books_held = true;
    return held;
  }

  // Only off-peak periods (room > 0) are rebate-eligible: inflow that
  // lands on an above-mean shoulder is traffic the mechanism must stop
  // paying for, not chase — steering pool share there stacks a new peak
  // right next to the old one. Masked inflow drives both the share update
  // and the rate re-fit.
  std::vector<double> inflow(n, 0.0);
  double total_inflow = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    if (room_[p] <= 0.0) continue;
    inflow[p] = std::max(day.realized_units[p] - day.offered_units[p], 0.0);
    total_inflow += inflow[p];
  }

  // Per-period response gain: units of inflow drawn per unit of published
  // rate, learned from yesterday's (rate, inflow) pair. This is the online
  // elasticity estimate the overfill guard prices against.
  for (std::size_t p = 0; p < n; ++p) {
    if (room_[p] <= 0.0 || rewards_[p] <= 1e-12) continue;
    const double observed = inflow[p] / rewards_[p];
    gain_[p] = gain_[p] > 0.0
                   ? (1.0 - kGainBlend) * gain_[p] + kGainBlend * observed
                   : observed;
  }

  if (total_inflow > 0.0) {
    double share_sum = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      shares_[p] = (1.0 - share_blend_) * shares_[p] +
                   share_blend_ * (inflow[p] / total_inflow);
      share_sum += shares_[p];
    }
    // EWMA of two unit-sum vectors stays unit-sum up to rounding; the
    // renormalization pins Σ s_p = 1 exactly so the pool never leaks.
    if (share_sum > 0.0) {
      for (std::size_t p = 0; p < n; ++p) shares_[p] /= share_sum;
    }
  }
  // Pacing: pull tomorrow's spend toward the pool from whichever side
  // today landed on. The square root halves the correction in log space —
  // full-ratio steps overshoot into a sustained limit cycle because the
  // deferral response is elastic. The per-day step is clamped so one
  // anomalous day cannot slam the controller, and the cumulative scale is
  // bounded so a dead market (paid ~ 0 no matter the rate) cannot wind it
  // up forever.
  if (day.reward_paid_units > 0.0) {
    const double step = std::clamp(
        std::sqrt(pool_ / day.reward_paid_units), 0.7, 1.4);
    spend_scale_ = std::clamp(spend_scale_ * step, 0.1, 10.0);
  }
  rates_from_inflow(inflow);

  paid_total_ += day.reward_paid_units;
  ++days_settled_;

  SettleInfo info;
  info.schedule_changed = true;
  info.budget_spent = day.reward_paid_units;
  info.budget_pool = pool_;
  return info;
}

MechanismState FixedBudgetRebateMechanism::export_state() const {
  MechanismState state;
  state.rewards = rewards_;
  state.scalars = {pool_,
                   inflow_floor_,
                   share_blend_,
                   spend_scale_,
                   paid_total_,
                   static_cast<double>(days_settled_),
                   static_cast<double>(missed_periods_today_),
                   static_cast<double>(held_settles_)};
  state.vectors = {shares_, gain_};
  return state;
}

void FixedBudgetRebateMechanism::restore_state(const MechanismState& state) {
  const std::size_t n = periods();
  // Legacy 6-scalar states (pre blackout-hold) restore with zero hold
  // counters; current states carry 8.
  TDP_REQUIRE(state.rewards.size() == n &&
                  (state.scalars.size() == 6 || state.scalars.size() == 8) &&
                  state.vectors.size() == 2 && state.vectors[0].size() == n &&
                  state.vectors[1].size() == n,
              "rebate state shape mismatch");
  rewards_ = state.rewards;
  pool_ = state.scalars[0];
  inflow_floor_ = state.scalars[1];
  share_blend_ = state.scalars[2];
  spend_scale_ = state.scalars[3];
  paid_total_ = state.scalars[4];
  days_settled_ = static_cast<std::uint64_t>(state.scalars[5]);
  missed_periods_today_ =
      state.scalars.size() > 6
          ? static_cast<std::uint64_t>(state.scalars[6])
          : 0;
  held_settles_ = state.scalars.size() > 7
                      ? static_cast<std::uint64_t>(state.scalars[7])
                      : 0;
  shares_ = state.vectors[0];
  gain_ = state.vectors[1];
}

}  // namespace tdp::mech
