// DayAheadOracleMechanism: the exact day-ahead solve — the arena's
// ground-truth upper bound.
//
// Where TubeOnline starts from the offline solve and then wanders with the
// per-period measurements, the oracle is handed the *true* fluid model (the
// same waiting functions and demand profile the population samples from)
// and solves the full-day reward vector offline with a refined schedule:
// the FISTA iteration cap is raised and the final smoothing mu tightened
// an extra decade beyond the online pricer's offline options
// (config.oracle_refine; off = the identical offline solve, isolating the
// value of the refinement alone).
//
// Day-ahead foresight enters at settle: pre-deferral (offered) demand is
// reward-independent, so the profile observed today IS tomorrow's truth
// for a seeded fleet. Each settle rescales the model's expected demand to
// the observed offered profile and re-solves the full day — the schedule
// the fleet publishes from day 2 on is the exact optimum for the demand it
// will actually face, not for the fluid expectation.
#pragma once

#include "mech/mechanism.hpp"

namespace tdp::mech {

class DayAheadOracleMechanism final : public PricingMechanism {
 public:
  DayAheadOracleMechanism(DynamicModel model,
                          const DynamicOptimizerOptions& offline_options,
                          const MechanismConfig& config);

  MechanismKind kind() const override {
    return MechanismKind::kDayAheadOracle;
  }
  const math::Vector& rewards() const override { return rewards_; }

  void observe_period(std::size_t, double, bool, std::size_t) override {}
  void observe_missed(std::size_t) override {}
  SettleInfo settle_day(const DaySettlement& day) override;

  double expected_cost() const override { return expected_cost_; }

  void restore_state(const MechanismState& state) override;

  bool converged() const { return converged_; }
  std::size_t solve_iterations() const { return solve_iterations_; }

 private:
  /// The configured model with the demand swapped in and the capacity
  /// tightened to the oracle's pricing target.
  DynamicModel priced_model(DemandProfile demand) const;

  DynamicModel model_;  ///< the true fluid model (expected demand)
  DynamicOptimizerOptions options_;
  double capacity_target_ = 1.0;
  math::Vector rewards_;
  double expected_cost_ = 0.0;
  bool converged_ = false;
  std::size_t solve_iterations_ = 0;
};

}  // namespace tdp::mech
