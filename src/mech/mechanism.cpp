#include "mech/mechanism.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "mech/flat_tip.hpp"
#include "mech/oracle.hpp"
#include "mech/rebate.hpp"
#include "mech/tube_online.hpp"

namespace tdp::mech {

const char* to_string(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kTubeOnline:
      return "tube_online";
    case MechanismKind::kFlatTip:
      return "flat_tip";
    case MechanismKind::kFixedBudgetRebate:
      return "fixed_budget_rebate";
    case MechanismKind::kDayAheadOracle:
      return "day_ahead_oracle";
  }
  return "unknown";
}

PricingMechanism::PricingMechanism(std::vector<double> tip_demand,
                                   double reward_cap)
    : tip_demand_(std::move(tip_demand)), reward_cap_(reward_cap) {
  TDP_REQUIRE(!tip_demand_.empty(), "mechanism needs a period structure");
}

MechanismState PricingMechanism::export_state() const {
  MechanismState state;
  state.rewards = rewards();
  return state;
}

void PricingMechanism::restore_state(const MechanismState& state) {
  TDP_REQUIRE(state.rewards.size() == periods(),
              "mechanism state period count mismatch");
}

std::unique_ptr<PricingMechanism> make_mechanism(
    const MechanismConfig& config, DynamicModel model,
    const DynamicOptimizerOptions& offline_options,
    const PricerGuardConfig& guard) {
  switch (config.kind) {
    case MechanismKind::kTubeOnline:
      return std::make_unique<TubeOnlineMechanism>(std::move(model),
                                                   offline_options, guard);
    case MechanismKind::kFlatTip:
      return std::make_unique<FlatTipMechanism>(std::move(model));
    case MechanismKind::kFixedBudgetRebate:
      return std::make_unique<FixedBudgetRebateMechanism>(std::move(model),
                                                          config);
    case MechanismKind::kDayAheadOracle:
      return std::make_unique<DayAheadOracleMechanism>(std::move(model),
                                                       offline_options,
                                                       config);
  }
  throw Error("unknown mechanism kind");
}

double profile_backlog_cost(const std::vector<double>& profile,
                            const std::vector<double>& capacity,
                            const math::PiecewiseLinearCost& cost,
                            std::size_t warmup_days) {
  TDP_REQUIRE(profile.size() == capacity.size() && !profile.empty(),
              "profile/capacity size mismatch");
  const std::size_t n = profile.size();
  double backlog = 0.0;
  for (std::size_t d = 0; d < warmup_days; ++d) {
    for (std::size_t p = 0; p < n; ++p) {
      backlog = std::max(backlog + profile[p] - capacity[p], 0.0);
    }
  }
  double total = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    backlog = std::max(backlog + profile[p] - capacity[p], 0.0);
    total += cost.value(backlog);
  }
  return total;
}

}  // namespace tdp::mech
