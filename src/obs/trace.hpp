// Scoped tracing spans exported as Chrome trace_event JSON.
//
// A Span is an RAII guard: construction records a 'B' (begin) event,
// destruction the matching 'E' (end). Spans nest naturally (stack order)
// and may be opened on any thread — each thread appends to its own buffer,
// so recording is contention-free in the steady state and events within
// one thread are monotone in timestamp by construction. The export merges
// the per-thread buffers (thread registration order) into the Chrome
// `traceEvents` array; load the file in chrome://tracing or Perfetto to
// see a full fleet day (publish → tables → simulate → aggregate → pricer)
// on a per-thread timeline.
//
// Tracing is OFF by default (the TDP_TRACE environment variable or
// set_trace_enabled turns it on): a disabled Span costs one relaxed atomic
// load and records nothing. Timestamps are steady-clock nanoseconds since
// the session epoch (first touch); they are diagnostic wall time, never an
// input to any simulated or optimized value.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tdp::obs {

/// Global trace switch (default off; TDP_TRACE=1 enables at startup).
bool trace_enabled();
void set_trace_enabled(bool enabled);

struct TraceEvent {
  std::string name;
  char phase = 'B';      ///< 'B' begin, 'E' end, 'i' instant
  std::uint64_t ts_ns = 0;  ///< steady nanoseconds since session epoch
  std::uint32_t tid = 0;    ///< registration-order thread id
};

/// RAII span; see file header. Safe to construct when tracing is disabled
/// (records nothing) and balanced even if tracing is toggled mid-span.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
};

/// Record a zero-duration instant event (gated like spans).
void trace_instant(std::string_view name);

/// All recorded events, grouped by thread (registration order) and
/// timestamp-monotone within each thread.
std::vector<TraceEvent> trace_events();

/// Total events recorded (cheap; for tests and overhead accounting).
std::size_t trace_event_count();

/// Drop every recorded event (buffers stay registered).
void trace_clear();

/// Serialize to Chrome trace_event JSON ({"traceEvents":[...]}, ts in
/// microseconds).
std::string chrome_trace_json();

/// chrome_trace_json() to a file; false on I/O failure.
bool write_chrome_trace(const std::string& path);

}  // namespace tdp::obs

#define TDP_OBS_CONCAT_INNER(a, b) a##b
#define TDP_OBS_CONCAT(a, b) TDP_OBS_CONCAT_INNER(a, b)
/// Open a span covering the rest of the enclosing scope.
#define TDP_OBS_SPAN(name) \
  ::tdp::obs::Span TDP_OBS_CONCAT(tdp_obs_span_, __COUNTER__)(name)
