#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>

namespace tdp::obs {
namespace {

void append_number(std::string& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

void append_number(std::string& out, std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%llu",
                static_cast<unsigned long long>(value));
  out += buffer;
}

void append_number(std::string& out, std::int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%lld", static_cast<long long>(value));
  out += buffer;
}

template <typename Row>
std::vector<const Row*> sorted_rows(const std::vector<Row>& rows) {
  std::vector<const Row*> sorted;
  sorted.reserve(rows.size());
  for (const Row& row : rows) sorted.push_back(&row);
  std::sort(sorted.begin(), sorted.end(),
            [](const Row* a, const Row* b) { return a->name < b->name; });
  return sorted;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
/// taxonomy maps dots (and anything else) to underscores.
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

std::string metrics_json(const Snapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto* row : sorted_rows(snapshot.counters)) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += row->name;
    out += "\":";
    append_number(out, row->value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto* row : sorted_rows(snapshot.gauges)) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += row->name;
    out += "\":";
    append_number(out, row->value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto* row : sorted_rows(snapshot.histograms)) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += row->name;
    out += "\":{\"count\":";
    append_number(out, row->count);
    out += ",\"sum\":";
    append_number(out, row->sum);
    out += ",\"sum_fp\":";
    append_number(out, row->sum_fp);
    out += ",\"scale\":";
    append_number(out, row->scale);
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < row->buckets.size(); ++b) {
      if (b) out += ',';
      out += "{\"le\":";
      if (b < row->bounds.size()) {
        append_number(out, row->bounds[b]);
      } else {
        out += "\"+Inf\"";
      }
      out += ",\"count\":";
      append_number(out, row->buckets[b]);
      out += '}';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string metrics_json() { return metrics_json(Registry::global().snapshot()); }

std::string prometheus_text(const Snapshot& snapshot) {
  std::string out;
  for (const auto* row : sorted_rows(snapshot.counters)) {
    const std::string name = prometheus_name(row->name);
    // HELP text is the registry's dotted taxonomy name: deterministic (the
    // exposition bytes are fixture-tested) and it round-trips the original
    // name through the [a-zA-Z0-9_:] sanitization.
    out += "# HELP " + name + " TDP counter " + row->name + '\n';
    out += "# TYPE " + name + " counter\n" + name + ' ';
    append_number(out, row->value);
    out += '\n';
  }
  for (const auto* row : sorted_rows(snapshot.gauges)) {
    const std::string name = prometheus_name(row->name);
    out += "# HELP " + name + " TDP gauge " + row->name + '\n';
    out += "# TYPE " + name + " gauge\n" + name + ' ';
    append_number(out, row->value);
    out += '\n';
  }
  for (const auto* row : sorted_rows(snapshot.histograms)) {
    const std::string name = prometheus_name(row->name);
    out += "# HELP " + name + " TDP histogram " + row->name + '\n';
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < row->buckets.size(); ++b) {
      cumulative += row->buckets[b];
      out += name + "_bucket{le=\"";
      if (b < row->bounds.size()) {
        append_number(out, row->bounds[b]);
      } else {
        out += "+Inf";
      }
      out += "\"} ";
      append_number(out, cumulative);
      out += '\n';
    }
    out += name + "_sum ";
    append_number(out, row->sum);
    out += '\n';
    out += name + "_count ";
    append_number(out, row->count);
    out += '\n';
  }
  return out;
}

std::string prometheus_text() {
  return prometheus_text(Registry::global().snapshot());
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), file);
  const bool complete = written == content.size();
  const bool closed = std::fclose(file) == 0;
  return complete && closed;
}

}  // namespace tdp::obs
