#include "obs/registry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>

namespace tdp::obs {
namespace {

std::atomic<bool>& metrics_flag() {
  // Read TDP_OBS exactly once, at first instrument touch; only the literal
  // "0" disables (any other value, including unset, leaves metrics on).
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("TDP_OBS");
    return !(env != nullptr && env[0] == '0' && env[1] == '\0');
  }()};
  return flag;
}

}  // namespace

bool metrics_enabled() {
  return metrics_flag().load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  metrics_flag().store(enabled, std::memory_order_relaxed);
}

namespace detail {

std::size_t thread_shard_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShardCells;
  return slot;
}

}  // namespace detail

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const detail::ShardCell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (detail::ShardCell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
}

void Gauge::set_always(double value) {
  bits_.store(std::bit_cast<std::uint64_t>(value), std::memory_order_relaxed);
}

double Gauge::value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

void Gauge::reset() { bits_.store(0, std::memory_order_relaxed); }

HistogramSpec HistogramSpec::exponential(double start, double factor,
                                         std::size_t count) {
  HistogramSpec spec;
  spec.bounds.reserve(count);
  double edge = start;
  for (std::size_t i = 0; i < count; ++i) {
    spec.bounds.push_back(edge);
    edge *= factor;
  }
  return spec;
}

Histogram::Histogram(std::string name, const HistogramSpec& spec)
    : name_(std::move(name)), bounds_(spec.bounds), scale_(spec.scale) {
  bucket_cells_ =
      std::vector<detail::ShardCell>(detail::kShardCells * buckets());
}

void Histogram::observe_always(double value) {
  // Inclusive upper edges ("le" semantics): a sample equal to a bound lands
  // in that bound's bucket, matching the Prometheus exposition.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  const std::size_t slot = detail::thread_shard_slot();
  bucket_cells_[slot * buckets() + bucket].value.fetch_add(
      1, std::memory_order_relaxed);
  count_cells_[slot].value.fetch_add(1, std::memory_order_relaxed);
  // Fixed-point sum: two's-complement add on the uint64 cell keeps negative
  // increments well-defined and the merge commutative.
  const std::int64_t increment = std::llround(value * scale_);
  sum_cells_[slot].value.fetch_add(static_cast<std::uint64_t>(increment),
                                   std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(std::size_t bucket) const {
  std::uint64_t total = 0;
  for (std::size_t slot = 0; slot < detail::kShardCells; ++slot) {
    total += bucket_cells_[slot * buckets() + bucket].value.load(
        std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const detail::ShardCell& cell : count_cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

std::int64_t Histogram::sum_fp() const {
  std::uint64_t total = 0;
  for (const detail::ShardCell& cell : sum_cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return static_cast<std::int64_t>(total);
}

double Histogram::sum() const {
  return static_cast<double>(sum_fp()) / scale_;
}

void Histogram::reset() {
  for (detail::ShardCell& cell : bucket_cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
  for (detail::ShardCell& cell : count_cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
  for (detail::ShardCell& cell : sum_cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // never destroyed: cached
  return *instance;                            // references stay valid
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& existing : counters_) {
    if (existing->name() == name) return *existing;
  }
  counters_.push_back(
      std::unique_ptr<Counter>(new Counter(std::string(name))));
  return *counters_.back();
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& existing : gauges_) {
    if (existing->name() == name) return *existing;
  }
  gauges_.push_back(std::unique_ptr<Gauge>(new Gauge(std::string(name))));
  return *gauges_.back();
}

Histogram& Registry::histogram(std::string_view name,
                               const HistogramSpec& spec) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& existing : histograms_) {
    if (existing->name() == name) return *existing;
  }
  histograms_.push_back(
      std::unique_ptr<Histogram>(new Histogram(std::string(name), spec)));
  return *histograms_.back();
}

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& counter : counters_) {
    snap.counters.push_back({counter->name(), counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& gauge : gauges_) {
    snap.gauges.push_back({gauge->name(), gauge->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& histogram : histograms_) {
    Snapshot::HistogramRow row;
    row.name = histogram->name();
    row.bounds = histogram->bounds();
    row.buckets.resize(histogram->buckets());
    for (std::size_t b = 0; b < histogram->buckets(); ++b) {
      row.buckets[b] = histogram->bucket_count(b);
    }
    row.count = histogram->count();
    row.sum_fp = histogram->sum_fp();
    row.scale = histogram->scale();
    row.sum = histogram->sum();
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

void Registry::reset_values() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& counter : counters_) counter->reset();
  for (const auto& gauge : gauges_) gauge->reset();
  for (const auto& histogram : histograms_) histogram->reset();
}

void Registry::set_counter_value(std::string_view name, std::uint64_t value) {
  Counter& target = counter(name);
  // Zero every cell, then park the whole value in cell 0: the merged sum —
  // the only thing value()/CounterDelta read — lands exactly on `value`.
  target.reset();
  target.cells_[0].value.store(value, std::memory_order_relaxed);
}

}  // namespace tdp::obs
