// Exporters for the metrics registry: one JSON snapshot writer (reused by
// benches and examples) and a Prometheus-style text dump. Both serialize a
// merged Snapshot with instruments sorted by name, so two runs doing the
// same work produce byte-identical files regardless of registration races.
#pragma once

#include <string>

#include "obs/registry.hpp"

namespace tdp::obs {

/// {"counters":{name:value,...},"gauges":{...},
///  "histograms":{name:{"count":...,"sum":...,"sum_fp":...,"scale":...,
///                      "buckets":[{"le":bound,"count":n},...]}}}
/// The final bucket's "le" is the string "+Inf".
std::string metrics_json(const Snapshot& snapshot);
std::string metrics_json();  ///< of Registry::global()

/// Prometheus exposition text: "# HELP" + "# TYPE" per metric, names
/// sanitized (dots -> underscores; the HELP text carries the original
/// dotted name), histograms as cumulative _bucket series plus _sum and
/// _count. Byte-stable for a given snapshot (fixture-tested).
std::string prometheus_text(const Snapshot& snapshot);
std::string prometheus_text();  ///< of Registry::global()

/// Write `content` to `path`; false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace tdp::obs
