#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace tdp::obs {
namespace {

std::atomic<bool>& trace_flag() {
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("TDP_TRACE");
    return env != nullptr && env[0] == '1' && env[1] == '\0';
  }()};
  return flag;
}

/// Per-thread event buffer. The owning thread appends under the buffer's
/// own mutex (uncontended except while an export or clear is running);
/// the session keeps a shared_ptr so events survive thread exit.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

class TraceSession {
 public:
  static TraceSession& instance() {
    static TraceSession* session = new TraceSession();
    return *session;
  }

  ThreadBuffer& local_buffer() {
    thread_local const std::shared_ptr<ThreadBuffer> buffer = [this] {
      auto fresh = std::make_shared<ThreadBuffer>();
      const std::lock_guard<std::mutex> lock(mutex_);
      fresh->tid = static_cast<std::uint32_t>(buffers_.size());
      buffers_.push_back(fresh);
      return fresh;
    }();
    return *buffer;
  }

  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  std::vector<std::shared_ptr<ThreadBuffer>> buffers() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return buffers_;
  }

 private:
  TraceSession() : epoch_(std::chrono::steady_clock::now()) {}

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::chrono::steady_clock::time_point epoch_;
};

void record(std::string_view name, char phase) {
  TraceSession& session = TraceSession::instance();
  ThreadBuffer& buffer = session.local_buffer();
  const std::uint64_t ts = session.now_ns();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(
      TraceEvent{std::string(name), phase, ts, buffer.tid});
}

void append_json_escaped(std::string& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

bool trace_enabled() { return trace_flag().load(std::memory_order_relaxed); }

void set_trace_enabled(bool enabled) {
  trace_flag().store(enabled, std::memory_order_relaxed);
}

Span::Span(std::string_view name) {
  if (trace_enabled()) {
    record(name, 'B');
    active_ = true;  // balance the 'E' even if tracing is toggled mid-span
  }
}

Span::~Span() {
  if (active_) record("", 'E');
}

void trace_instant(std::string_view name) {
  if (trace_enabled()) record(name, 'i');
}

std::vector<TraceEvent> trace_events() {
  std::vector<TraceEvent> merged;
  for (const auto& buffer : TraceSession::instance().buffers()) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    merged.insert(merged.end(), buffer->events.begin(), buffer->events.end());
  }
  return merged;
}

std::size_t trace_event_count() {
  std::size_t total = 0;
  for (const auto& buffer : TraceSession::instance().buffers()) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

void trace_clear() {
  for (const auto& buffer : TraceSession::instance().buffers()) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::string chrome_trace_json() {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : trace_events()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, event.name);
    out += "\",\"ph\":\"";
    out += event.phase;
    // Chrome wants microseconds; keep nanosecond resolution in the
    // fractional part.
    char buf[64];
    std::snprintf(buf, sizeof buf,
                  "\",\"ts\":%.3f,\"pid\":1,\"tid\":%u}",
                  static_cast<double>(event.ts_ns) / 1000.0, event.tid);
    out += buf;
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = chrome_trace_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = written == json.size() && std::fclose(file) == 0;
  if (!ok && written != json.size()) std::fclose(file);
  return ok;
}

}  // namespace tdp::obs
