// Online change detectors for the incident engine. Both are pure functions
// of their input sequence — no clocks, no RNG — so every downstream alert
// stream inherits the repo's bitwise determinism discipline. State is plain
// doubles/counters and serializes field-for-field into checkpoints/dumps.
#pragma once

#include <cstdint>

namespace tdp::obs::incident {

/// One-sided CUSUM on a non-negative disturbance stream x_t in [0, 1]:
///
///   S_t = max(0, S_{t-1} + x_t - k)      alert when S_t >= h, then reset.
///
/// The drift k absorbs the calm-run chaos floor (i.i.d. fault noise keeps
/// E[x] well under k, so S decays between blips); a sustained shift above
/// k accumulates at rate (E[x] - k) per period and crosses h in
/// ~h / (E[x] - k) periods. Resetting on alert re-arms the detector so a
/// long regime burst re-alerts instead of pinning S at infinity.
class CusumDetector {
 public:
  CusumDetector() = default;

  /// Feed one observation; returns the updated statistic S *before* any
  /// reset — the detector fired iff the return value >= h (S has then been
  /// reset to 0 so the next burst re-arms).
  double update(double x, double k, double h);

  double value() const { return s_; }
  std::uint64_t samples() const { return samples_; }
  std::uint64_t firings() const { return firings_; }

  void restore(double s, std::uint64_t samples, std::uint64_t firings);

  bool operator==(const CusumDetector&) const = default;

 private:
  double s_ = 0.0;
  std::uint64_t samples_ = 0;
  std::uint64_t firings_ = 0;
};

/// Exponentially-weighted mean/variance tracker with z-score alerts:
///
///   z_t    = (x_t - m_{t-1}) / max(sigma_{t-1}, sigma_floor)
///   m_t    = (1 - a) m_{t-1} + a x_t
///   v_t    = (1 - a) (v_{t-1} + a (x_t - m_{t-1})^2)
///
/// The score is taken against the *prior* estimate (the new sample must
/// not defend itself), and the variance floor keeps an eerily-stable
/// warmup from turning round-off into infinite z. Warmup: until
/// min_samples observations have been folded in, update() reports z = 0.
class EwmaDetector {
 public:
  EwmaDetector() = default;

  /// Feed one observation; returns the z-score of x against the prior
  /// mean/deviation (0 during warmup), then folds x into the estimate.
  double update(double x, double alpha, std::uint64_t min_samples);

  double mean() const { return mean_; }
  double variance() const { return var_; }
  std::uint64_t samples() const { return samples_; }

  void restore(double mean, double var, std::uint64_t samples);

  bool operator==(const EwmaDetector&) const = default;

  /// Deviation floor: relative to the running mean so the detector is
  /// scale-free (P2A ratios ~2, peak units ~1e5 both work).
  static double sigma_floor(double mean);

 private:
  double mean_ = 0.0;
  double var_ = 0.0;
  std::uint64_t samples_ = 0;
};

}  // namespace tdp::obs::incident
