#include "obs/incident/detectors.hpp"

#include <algorithm>
#include <cmath>

namespace tdp::obs::incident {

double CusumDetector::update(double x, double k, double h) {
  ++samples_;
  s_ = std::max(0.0, s_ + x - k);
  const double crossed = s_;
  if (s_ >= h) {
    s_ = 0.0;
    ++firings_;
  }
  return crossed;
}

void CusumDetector::restore(double s, std::uint64_t samples,
                            std::uint64_t firings) {
  s_ = s;
  samples_ = samples;
  firings_ = firings;
}

double EwmaDetector::sigma_floor(double mean) {
  return std::max(1e-12, 1e-3 * std::abs(mean));
}

double EwmaDetector::update(double x, double alpha,
                            std::uint64_t min_samples) {
  double z = 0.0;
  if (samples_ >= min_samples && samples_ > 0) {
    const double sigma =
        std::max(std::sqrt(std::max(0.0, var_)), sigma_floor(mean_));
    z = (x - mean_) / sigma;
  }
  if (samples_ == 0) {
    mean_ = x;
    var_ = 0.0;
  } else {
    const double delta = x - mean_;
    mean_ += alpha * delta;
    var_ = (1.0 - alpha) * (var_ + alpha * delta * delta);
  }
  ++samples_;
  return z;
}

void EwmaDetector::restore(double mean, double var, std::uint64_t samples) {
  mean_ = mean;
  var_ = var;
  samples_ = samples;
}

}  // namespace tdp::obs::incident
