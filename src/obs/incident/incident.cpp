#include "obs/incident/incident.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/journal.hpp"
#include "obs/registry.hpp"

namespace tdp::obs::incident {

const char* to_string(Health health) {
  switch (health) {
    case Health::kHealthy:
      return "HEALTHY";
    case Health::kDegraded:
      return "DEGRADED";
    case Health::kFallback:
      return "FALLBACK";
  }
  return "?";
}

const char* to_string(AlertKind kind) {
  switch (kind) {
    case AlertKind::kMeasurementCusum:
      return "measurement_cusum";
    case AlertKind::kChannelCusum:
      return "channel_cusum";
    case AlertKind::kSolverCusum:
      return "solver_cusum";
    case AlertKind::kHealthEdge:
      return "health_edge";
    case AlertKind::kP2aZScore:
      return "p2a_zscore";
    case AlertKind::kPeakZScore:
      return "peak_zscore";
    case AlertKind::kPacingBound:
      return "pacing_bound";
  }
  return "?";
}

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kMinor:
      return "MINOR";
    case Severity::kMajor:
      return "MAJOR";
    case Severity::kCritical:
      return "CRITICAL";
  }
  return "?";
}

const char* to_string(Objective objective) {
  switch (objective) {
    case Objective::kLoopDisturbance:
      return "loop_disturbance";
    case Objective::kFallbackBudget:
      return "fallback_budget";
    case Objective::kP2aRegression:
      return "p2a_regression";
    case Objective::kPacing:
      return "pacing";
  }
  return "?";
}

const char* to_string(RecorderKind kind) {
  switch (kind) {
    case RecorderKind::kDisturbance:
      return "disturbance";
    case RecorderKind::kChannelDegraded:
      return "channel_degraded";
    case RecorderKind::kSolverStarved:
      return "solver_starved";
    case RecorderKind::kHealthEdge:
      return "health_edge";
    case RecorderKind::kAlert:
      return "alert";
    case RecorderKind::kIncidentOpen:
      return "incident_open";
    case RecorderKind::kIncidentClose:
      return "incident_close";
    case RecorderKind::kSettle:
      return "settle";
    case RecorderKind::kDayEnd:
      return "day_end";
    case RecorderKind::kReanchor:
      return "reanchor";
  }
  return "?";
}

IncidentEngine::IncidentEngine(IncidentConfig config)
    : config_(std::move(config)) {
  state_.slo_window.assign(std::max<std::uint32_t>(1, config_.slo_long_window),
                           0);
}

std::uint64_t IncidentEngine::incidents_closed() const {
  std::uint64_t closed = 0;
  for (const Incident& incident : state_.incidents) {
    if (incident.closed) ++closed;
  }
  return closed;
}

std::uint64_t IncidentEngine::open_incidents() const {
  return state_.incidents.size() > incidents_closed()
             ? state_.incidents.size() - incidents_closed()
             : 0;
}

std::vector<RecorderEntry> IncidentEngine::recorder() const {
  std::vector<RecorderEntry> out;
  out.reserve(state_.recorder.size());
  // Ring unwind: oldest entry sits at recorder_pos once the ring has
  // wrapped (recorder_overwritten > 0), else at index 0.
  const std::size_t n = state_.recorder.size();
  const std::size_t start = state_.recorder_overwritten > 0
                                ? state_.recorder_pos
                                : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(state_.recorder[(start + i) % n]);
  }
  return out;
}

void IncidentEngine::record(std::uint64_t abs_period, RecorderKind kind,
                            double a, double b) {
  RecorderEntry entry;
  entry.abs_period = abs_period;
  entry.kind = kind;
  entry.a = a;
  entry.b = b;
  const std::uint32_t capacity = std::max<std::uint32_t>(1,
                                                         config_.recorder_capacity);
  if (state_.recorder.size() < capacity) {
    state_.recorder.push_back(entry);
    state_.recorder_pos = static_cast<std::uint32_t>(state_.recorder.size() %
                                                     capacity);
  } else {
    state_.recorder[state_.recorder_pos] = entry;
    state_.recorder_pos = (state_.recorder_pos + 1) % capacity;
    ++state_.recorder_overwritten;
  }
}

void IncidentEngine::emit_alert(std::uint64_t day, std::uint32_t period,
                                std::uint64_t abs_period, AlertKind kind,
                                double value, double threshold) {
  Alert alert;
  alert.seq = state_.next_alert_seq++;
  alert.day = day;
  alert.period = period;
  alert.abs_period = abs_period;
  alert.kind = kind;
  alert.value = value;
  alert.threshold = threshold;
  if (state_.alerts.size() < config_.max_alerts) {
    state_.alerts.push_back(alert);
  } else {
    ++state_.alerts_dropped;
  }
  record(abs_period, RecorderKind::kAlert,
         static_cast<double>(static_cast<std::uint8_t>(kind)), value);
  journal_record("incident.alert", static_cast<std::int64_t>(abs_period), -1,
                 to_string(kind),
                 {{"seq", static_cast<double>(alert.seq)},
                  {"value", value},
                  {"threshold", threshold},
                  {"day", static_cast<double>(day)}});
}

Incident* IncidentEngine::find_open(Objective objective) {
  for (auto it = state_.incidents.rbegin(); it != state_.incidents.rend();
       ++it) {
    if (it->objective == objective && !it->closed) return &*it;
  }
  return nullptr;
}

void IncidentEngine::open_incident(Objective objective, Severity severity,
                                   std::uint64_t day, std::uint32_t period,
                                   std::uint64_t abs_period,
                                   double burn_short, double burn_long) {
  if (find_open(objective) != nullptr) return;
  Incident incident;
  incident.id = state_.next_incident_id++;
  incident.objective = objective;
  incident.severity = severity;
  incident.open_day = day;
  incident.open_period = period;
  incident.open_abs_period = abs_period;
  incident.burn_short = burn_short;
  incident.burn_long = burn_long;
  incident.storm_blackout = state_.storm_blackout;
  incident.storm_channel = state_.storm_channel;
  incident.storm_solver = state_.storm_solver;
  incident.health = state_.health;
  incident.last_reanchor_day = state_.last_reanchor_day;
  incident.last_reanchor = state_.last_reanchor;
  state_.incidents.push_back(incident);
  record(abs_period, RecorderKind::kIncidentOpen,
         static_cast<double>(incident.id),
         static_cast<double>(static_cast<std::uint8_t>(objective)));
  journal_record(
      "incident.open", static_cast<std::int64_t>(abs_period), -1,
      std::string(to_string(objective)) + " " + to_string(severity),
      {{"id", static_cast<double>(incident.id)},
       {"severity", static_cast<double>(static_cast<std::uint8_t>(severity))},
       {"burn_short", burn_short},
       {"burn_long", burn_long},
       {"day", static_cast<double>(day)}});
  maybe_write_dump();
}

void IncidentEngine::close_incident(Objective objective,
                                    std::uint64_t abs_period) {
  Incident* open = find_open(objective);
  if (open == nullptr) return;
  open->closed = true;
  open->close_abs_period = abs_period;
  const double duration =
      static_cast<double>(abs_period - open->open_abs_period);
  record(abs_period, RecorderKind::kIncidentClose,
         static_cast<double>(open->id), duration);
  journal_record("incident.close", static_cast<std::int64_t>(abs_period), -1,
                 to_string(objective),
                 {{"id", static_cast<double>(open->id)},
                  {"duration_periods", duration}});
}

void IncidentEngine::maybe_write_dump() {
  if (config_.dump_path.empty()) return;
  const bool ok = write_dump(config_.dump_path, /*include_wall=*/false);
  journal_record("incident.dump",
                 static_cast<std::int64_t>(state_.last_abs_period), -1,
                 config_.dump_path, {{"ok", ok ? 1.0 : 0.0}});
}

void IncidentEngine::observe_period(const PeriodSignals& s) {
  state_.last_day = s.day;
  state_.last_period = s.period;
  state_.last_abs_period = s.abs_period;

  // Attribution memory first: an alert emitted this period should snapshot
  // this period's regime/health state.
  state_.storm_blackout = s.storm_blackout;
  state_.storm_channel = s.storm_channel;
  state_.storm_solver = s.storm_solver;
  state_.health = s.health;

  // Health-FSM edge trigger: any rung change alerts immediately.
  if (state_.has_prev_health && state_.prev_health != s.health) {
    record(s.abs_period, RecorderKind::kHealthEdge,
           static_cast<double>(static_cast<std::uint8_t>(state_.prev_health)),
           static_cast<double>(static_cast<std::uint8_t>(s.health)));
    emit_alert(s.day, s.period, s.abs_period, AlertKind::kHealthEdge,
               static_cast<double>(static_cast<std::uint8_t>(s.health)),
               static_cast<double>(
                   static_cast<std::uint8_t>(state_.prev_health)));
  }
  state_.prev_health = s.health;
  state_.has_prev_health = true;

  // Measurement stream: a blackout period scores 1, a repaired/partially
  // lost one 0.5 (the guard absorbed it, but the loop ran on synthesized
  // data).
  const double x_meas =
      s.measurement_gap
          ? 1.0
          : ((s.measurement_repaired || s.lost_stripes > 0) ? 0.5 : 0.0);
  if (x_meas > 0.0) {
    record(s.abs_period, RecorderKind::kDisturbance, x_meas,
           static_cast<double>(s.lost_stripes));
  }
  const double s_meas =
      state_.cusum_measurement.update(x_meas, config_.cusum_k, config_.cusum_h);
  if (s_meas >= config_.cusum_h) {
    emit_alert(s.day, s.period, s.abs_period, AlertKind::kMeasurementCusum,
               s_meas, config_.cusum_h);
  }

  // Price-channel stream: fraction of the fan-out that failed or served
  // stale this period (failed attempts diluted by group count).
  const double x_chan =
      s.price_groups > 0
          ? std::min(1.0, static_cast<double>(s.failed_attempts +
                                              s.degraded_groups) /
                              static_cast<double>(s.price_groups))
          : 0.0;
  if (s.failed_attempts + s.degraded_groups > 0) {
    record(s.abs_period, RecorderKind::kChannelDegraded,
           static_cast<double>(s.failed_attempts),
           static_cast<double>(s.degraded_groups));
  }
  const double s_chan = state_.cusum_channel.update(
      x_chan, config_.channel_cusum_k, config_.channel_cusum_h);
  if (s_chan >= config_.channel_cusum_h) {
    emit_alert(s.day, s.period, s.abs_period, AlertKind::kChannelCusum,
               s_chan, config_.channel_cusum_h);
  }

  // Solver stream: starved re-pricing solves are rare and binary.
  if (s.solver_starved) {
    record(s.abs_period, RecorderKind::kSolverStarved, 1.0, 0.0);
  }
  const double s_solv = state_.cusum_solver.update(
      s.solver_starved ? 1.0 : 0.0, config_.cusum_k, config_.cusum_h);
  if (s_solv >= config_.cusum_h) {
    emit_alert(s.day, s.period, s.abs_period, AlertKind::kSolverCusum,
               s_solv, config_.cusum_h);
  }

  // SLO: loop-disturbance burn rate. A period is bad when its telemetry
  // was disturbed in any of the three ways the detectors watch.
  const bool bad =
      s.measurement_gap || s.solver_starved || s.degraded_groups > 0;
  const std::uint32_t long_window =
      static_cast<std::uint32_t>(state_.slo_window.size());
  state_.slo_window[state_.slo_pos] = bad ? 1 : 0;
  state_.slo_pos = (state_.slo_pos + 1) % long_window;
  if (state_.slo_filled < long_window) ++state_.slo_filled;

  if (state_.slo_filled >= long_window) {
    const std::uint32_t short_window =
        std::min(config_.slo_short_window, long_window);
    std::uint32_t bad_long = 0;
    std::uint32_t bad_short = 0;
    for (std::uint32_t i = 0; i < long_window; ++i) {
      // Walk backwards from the newest bit (just written at slo_pos - 1).
      const std::uint32_t idx =
          (state_.slo_pos + long_window - 1 - i) % long_window;
      bad_long += state_.slo_window[idx];
      if (i < short_window) bad_short += state_.slo_window[idx];
    }
    const double burn_short =
        short_window > 0
            ? static_cast<double>(bad_short) / short_window
            : 0.0;
    const double burn_long = static_cast<double>(bad_long) / long_window;
    Incident* open = find_open(Objective::kLoopDisturbance);
    if (open == nullptr) {
      if (burn_short >= config_.slo_short_burn &&
          burn_long >= config_.slo_long_burn) {
        Severity severity = Severity::kMinor;
        if (burn_long >= 2.0 * config_.slo_long_burn) {
          severity = Severity::kCritical;
        } else if (burn_short >= 1.0) {
          severity = Severity::kMajor;
        }
        open_incident(Objective::kLoopDisturbance, severity, s.day, s.period,
                      s.abs_period, burn_short, burn_long);
      }
    } else if (burn_short == 0.0) {
      // Hysteresis: close only once the short window is fully clean.
      close_incident(Objective::kLoopDisturbance, s.abs_period);
    }
  }
}

void IncidentEngine::observe_settle(const SettleSignals& s) {
  ++state_.settles_seen;
  record(s.abs_period, RecorderKind::kSettle, s.budget_spent,
         s.books_held ? -1.0 : s.budget_pool);
  if (s.books_held) return;  // blackout hold: the books are frozen, not late
  if (s.budget_pool <= 0.0) return;  // unbudgeted mechanism
  if (state_.settles_seen <= config_.pacing_grace_days) return;
  const double ratio = s.budget_spent / s.budget_pool;
  if (ratio > config_.pacing_max_ratio) {
    emit_alert(s.day, kDayScopedPeriod, s.abs_period,
               AlertKind::kPacingBound, ratio, config_.pacing_max_ratio);
    open_incident(Objective::kPacing,
                  ratio >= 2.0 * config_.pacing_max_ratio
                      ? Severity::kCritical
                      : Severity::kMajor,
                  s.day, kDayScopedPeriod, s.abs_period, ratio,
                  config_.pacing_max_ratio);
  } else {
    close_incident(Objective::kPacing, s.abs_period);
  }
}

void IncidentEngine::observe_day(const DaySignals& s) {
  ++state_.days_seen;
  const double reduction = s.peak_to_average_tip - s.peak_to_average_tdp;
  record(s.abs_period, RecorderKind::kDayEnd, reduction,
         static_cast<double>(s.fallback_periods));

  // Re-anchor attribution (before z-scores so a same-day alert sees it).
  ReanchorState decision = ReanchorState::kNone;
  if (s.estimation_frozen) {
    decision = ReanchorState::kFrozen;
  } else if (s.reanchor_rolled_back) {
    decision = ReanchorState::kRolledBack;
  } else if (s.reanchored) {
    decision = ReanchorState::kAdopted;
  } else if (s.reanchor_deferred) {
    decision = ReanchorState::kDeferred;
  }
  if (decision != ReanchorState::kNone) {
    state_.last_reanchor_day = static_cast<std::int64_t>(s.day);
    state_.last_reanchor = decision;
    record(s.abs_period, RecorderKind::kReanchor,
           static_cast<double>(static_cast<std::int8_t>(decision)),
           static_cast<double>(s.day));
  }

  // EWMA z-scores on the day-end shape metrics.
  const double z_p2a =
      state_.ewma_p2a.update(reduction, config_.ewma_alpha,
                             config_.ewma_min_days);
  if (std::abs(z_p2a) >= config_.ewma_z) {
    emit_alert(s.day, kDayScopedPeriod, s.abs_period, AlertKind::kP2aZScore,
               z_p2a, config_.ewma_z);
  }
  const double z_peak =
      state_.ewma_peak.update(s.peak_realized_units, config_.ewma_alpha,
                              config_.ewma_min_days);
  if (std::abs(z_peak) >= config_.ewma_z) {
    emit_alert(s.day, kDayScopedPeriod, s.abs_period, AlertKind::kPeakZScore,
               z_peak, config_.ewma_z);
  }

  // SLO: fallback budget per day.
  if (config_.slo_max_fallback_per_day != ~0ull) {
    if (s.fallback_periods > config_.slo_max_fallback_per_day) {
      open_incident(Objective::kFallbackBudget,
                    s.fallback_periods > 2 * config_.slo_max_fallback_per_day
                        ? Severity::kCritical
                        : Severity::kMajor,
                    s.day, kDayScopedPeriod, s.abs_period,
                    static_cast<double>(s.fallback_periods),
                    static_cast<double>(config_.slo_max_fallback_per_day));
    } else {
      close_incident(Objective::kFallbackBudget, s.abs_period);
    }
  }

  // SLO: P2A-reduction floor over the trailing window.
  if (config_.slo_p2a_floor > 0.0 && config_.slo_p2a_window_days > 0) {
    state_.p2a_window.push_back(reduction);
    if (state_.p2a_window.size() > config_.slo_p2a_window_days) {
      state_.p2a_window.erase(state_.p2a_window.begin());
    }
    if (state_.p2a_window.size() == config_.slo_p2a_window_days) {
      double mean = 0.0;
      for (double v : state_.p2a_window) mean += v;
      mean /= static_cast<double>(state_.p2a_window.size());
      if (mean < config_.slo_p2a_floor) {
        open_incident(Objective::kP2aRegression,
                      mean < 0.5 * config_.slo_p2a_floor ? Severity::kCritical
                                                         : Severity::kMajor,
                      s.day, kDayScopedPeriod, s.abs_period, mean,
                      config_.slo_p2a_floor);
      } else {
        close_incident(Objective::kP2aRegression, s.abs_period);
      }
    }
  }
}

void IncidentEngine::note_commit_latency(double seconds) {
  if (wall_commit_latencies_.size() < 4096) {
    wall_commit_latencies_.push_back(seconds);
  }
  if (seconds > config_.commit_latency_budget_seconds) {
    journal_record("incident.advisory",
                   static_cast<std::int64_t>(state_.last_abs_period), -1,
                   "checkpoint commit over latency budget",
                   {{"seconds", seconds},
                    {"budget_seconds", config_.commit_latency_budget_seconds}});
  }
}

void IncidentEngine::restore_state(EngineState state) {
  state_ = std::move(state);
  if (state_.slo_window.empty()) {
    state_.slo_window.assign(
        std::max<std::uint32_t>(1, config_.slo_long_window), 0);
  }
}

std::vector<std::uint8_t> IncidentEngine::dump(bool include_wall) const {
  DumpData data;
  data.day = state_.last_day;
  data.period = state_.last_period;
  data.has_wall = include_wall;
  data.config = config_;
  data.state = state_;
  if (include_wall) {
    Snapshot snapshot = Registry::global().snapshot();
    for (const Snapshot::CounterRow& row : snapshot.counters) {
      if (row.name.size() > 3 &&
          row.name.compare(row.name.size() - 3, 3, "_ns") == 0) {
        data.wall_counters.emplace_back(row.name, row.value);
      }
    }
    std::sort(data.wall_counters.begin(), data.wall_counters.end());
    data.wall_commit_latencies = wall_commit_latencies_;
  }
  return encode_dump(data);
}

bool IncidentEngine::write_dump(const std::string& path,
                                bool include_wall) const {
  const std::vector<std::uint8_t> bytes = dump(include_wall);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool complete = written == bytes.size();
  const bool closed = std::fclose(file) == 0;
  return complete && closed;
}

}  // namespace tdp::obs::incident
