// Incident engine: deterministic anomaly detection, SLO burn-rate alerts,
// and a flight recorder for the TDP control loop (DESIGN.md §16).
//
// The telemetry substrate (obs::Registry / Journal / trace) answers "how
// many" and "what happened"; this layer answers "is the loop healthy, and
// if not, since when and why". It is wired through FleetDriver and
// MultiDayDriver as a pure observer: the drivers feed it one PeriodSignals
// per simulated period, one SettleSignals per mechanism settle, and one
// DaySignals per finished day — every field a deterministic aggregate the
// driver already computed — and the engine turns them into
//
//   * alerts       detector firings (EWMA z-scores on day-end P2A and peak
//                  demand, CUSUM accumulators on the measurement / price-
//                  channel / solver disturbance streams, health-FSM edge
//                  triggers, rebate pacing bound), each a pure function of
//                  the signal sequence;
//   * incidents    SLO objectives tracked via multi-window burn rates
//                  (short window catches the spike, long window proves it
//                  is not a blip), opened/closed with severity and an
//                  attribution snapshot (active storm regimes, health-FSM
//                  state, last re-anchor decision);
//   * a recorder   bounded ring of recent control-loop moments, snapshotted
//                  into a self-contained dump ("TDPI" framing of
//                  common/serialize) whenever an incident opens or the
//                  caller aborts — tools/tdp_triage.py renders it.
//
// Determinism contract: everything above except the wall-clock extras is a
// pure function of the observed signal sequence, so the alert stream, the
// incident list, and dump(include_wall=false) bytes are bitwise identical
// across thread counts, shard layouts, and kill/restore at any period
// boundary (the engine state serializes into checkpoint section
// kSecIncident). Wall-clock inputs — checkpoint-commit latency, per-phase
// timings — are advisory only: they surface as "incident.advisory" journal
// events and an optional dump section, never in the deterministic streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/serialize.hpp"
#include "obs/incident/detectors.hpp"

namespace tdp::obs::incident {

/// The pricer health ladder as the engine sees it. Mirrors
/// dynamic/online_pricer.hpp's PricerHealth without depending on it: the
/// engine sits below the pricing layers and drivers map the enum over.
enum class Health : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kFallback = 2,
};

const char* to_string(Health health);

/// Detector thresholds and SLO objectives. Every field above the
/// execution-knob divider is determinism-relevant: it shapes the alert
/// stream, is echoed into checkpoints, and restore rejects mismatches.
struct IncidentConfig {
  bool enabled = false;

  // -- CUSUM disturbance detectors (per period) ---------------------------
  // S = max(0, S + x - k), alert and reset when S >= h. The drift k absorbs
  // the i.i.d. chaos floor; h is low enough that one fully-disturbed
  // period (x = 1) fires — storm bursts can be a single period long and
  // the acceptance gate requires catching every onset.
  double cusum_k = 0.25;
  double cusum_h = 0.7;
  /// Channel stream sensitivity: the failed-attempt fraction is diluted by
  /// group count, so the channel CUSUM gets its own (lower) drift/threshold.
  double channel_cusum_k = 0.10;
  double channel_cusum_h = 0.10;

  // -- EWMA z-score detectors (per day) -----------------------------------
  double ewma_alpha = 0.3;          ///< weight of the newest day
  double ewma_z = 4.0;              ///< |z| that fires an alert
  std::uint64_t ewma_min_days = 3;  ///< warmup before z is meaningful

  // -- rebate pacing bound (per settle) -----------------------------------
  double pacing_max_ratio = 1.5;        ///< spend / pool ceiling
  std::uint64_t pacing_grace_days = 2;  ///< settles before the bound arms

  // -- SLO: loop-disturbance burn rate (per period) -----------------------
  // A period is "bad" when its telemetry was disturbed (gap, stale price
  // service, or a starved solve). The objective opens an incident when the
  // bad fraction clears both burn thresholds at once.
  std::uint32_t slo_short_window = 4;
  std::uint32_t slo_long_window = 16;
  double slo_short_burn = 1.0;  ///< bad fraction over the short window
  double slo_long_burn = 0.30;  ///< bad fraction over the long window

  // -- SLO: fallback budget (per day) -------------------------------------
  /// Max FALLBACK periods per day before the objective opens (the
  /// "fallback periods <= Y/day" objective). ~0 disables.
  std::uint64_t slo_max_fallback_per_day = ~0ull;

  // -- SLO: P2A-reduction floor (per day, trailing window) ----------------
  /// Open when the mean day-end P2A reduction over the trailing window
  /// falls below this floor ("P2A reduction >= X over any W-day window").
  /// 0 disables.
  double slo_p2a_floor = 0.0;
  std::uint32_t slo_p2a_window_days = 8;

  // -- bounded retention --------------------------------------------------
  std::uint32_t recorder_capacity = 256;  ///< flight-recorder ring slots
  std::uint32_t max_alerts = 4096;        ///< retained alerts; then drops

  // -- execution knobs (never config-echoed; wall-clock / I/O only) -------
  /// Checkpoint-commit latency budget; slower commits emit an advisory
  /// journal event (wall clock — advisory only, see header comment).
  double commit_latency_budget_seconds = 0.25;
  /// When non-empty, every incident.open rewrites a flight-recorder dump
  /// at this path (deterministic sections only; pass include_wall=true to
  /// write_dump for the timing extras).
  std::string dump_path;
};

/// What one detector firing looked like.
enum class AlertKind : std::uint8_t {
  kMeasurementCusum = 0,  ///< measurement gaps / repairs / lost stripes
  kChannelCusum = 1,      ///< price-channel drops and stale service
  kSolverCusum = 2,       ///< starved re-pricing solves
  kHealthEdge = 3,        ///< health-FSM left or re-entered HEALTHY
  kP2aZScore = 4,         ///< day-end P2A reduction z-score
  kPeakZScore = 5,        ///< day-end realized peak z-score
  kPacingBound = 6,       ///< rebate spend vs pool pacing bound
};

const char* to_string(AlertKind kind);

/// Alert::period value for day-scoped alerts (settle / day-end detectors
/// have no single period of their own).
inline constexpr std::uint32_t kDayScopedPeriod = 0xFFFFFFFFu;

struct Alert {
  std::uint64_t seq = 0;  ///< position in the deterministic alert stream
  std::uint64_t day = 0;
  std::uint32_t period = 0;
  std::uint64_t abs_period = 0;
  AlertKind kind = AlertKind::kMeasurementCusum;
  double value = 0.0;      ///< the statistic that fired (S, z, ratio...)
  double threshold = 0.0;  ///< the configured bound it crossed

  bool operator==(const Alert&) const = default;
};

enum class Severity : std::uint8_t { kMinor = 0, kMajor = 1, kCritical = 2 };
enum class Objective : std::uint8_t {
  kLoopDisturbance = 0,
  kFallbackBudget = 1,
  kP2aRegression = 2,
  kPacing = 3,
};
inline constexpr std::size_t kObjectiveCount = 4;

const char* to_string(Severity severity);
const char* to_string(Objective objective);

/// The last re-anchor decision the engine heard about (attribution).
enum class ReanchorState : std::int8_t {
  kNone = -1,
  kAdopted = 0,
  kDeferred = 1,
  kRolledBack = 2,
  kFrozen = 3,
};

struct Incident {
  std::uint64_t id = 0;
  Objective objective = Objective::kLoopDisturbance;
  Severity severity = Severity::kMinor;
  std::uint64_t open_day = 0;
  std::uint32_t open_period = 0;
  std::uint64_t open_abs_period = 0;
  bool closed = false;
  std::uint64_t close_abs_period = 0;
  double burn_short = 0.0;  ///< short-window burn at open
  double burn_long = 0.0;   ///< long-window burn at open

  // -- attribution snapshot at open ---------------------------------------
  bool storm_blackout = false;  ///< blackout regime ON at open
  bool storm_channel = false;   ///< channel regime ON at open
  bool storm_solver = false;    ///< solver regime ON at open
  Health health = Health::kHealthy;
  std::int64_t last_reanchor_day = -1;
  ReanchorState last_reanchor = ReanchorState::kNone;

  bool operator==(const Incident&) const = default;
};

/// One flight-recorder moment (compact: a kind and two values).
enum class RecorderKind : std::uint8_t {
  kDisturbance = 0,    ///< a = gap(1)/repair(0.5), b = lost stripes
  kChannelDegraded = 1,///< a = failed attempts, b = degraded groups
  kSolverStarved = 2,  ///< a/b unused
  kHealthEdge = 3,     ///< a = from, b = to
  kAlert = 4,          ///< a = AlertKind, b = value
  kIncidentOpen = 5,   ///< a = id, b = Objective
  kIncidentClose = 6,  ///< a = id, b = open duration in periods
  kSettle = 7,         ///< a = budget spent, b = pool (b < 0: books held)
  kDayEnd = 8,         ///< a = p2a reduction, b = fallback periods
  kReanchor = 9,       ///< a = ReanchorState, b = day
};

const char* to_string(RecorderKind kind);

struct RecorderEntry {
  std::uint64_t abs_period = 0;
  RecorderKind kind = RecorderKind::kDisturbance;
  double a = 0.0;
  double b = 0.0;

  bool operator==(const RecorderEntry&) const = default;
};

// ---------------------------------------------------------------------------
// Driver-fed signals. Every field is a deterministic aggregate — never a
// gated obs counter, so the alert stream is identical under TDP_OBS=0.

struct PeriodSignals {
  std::uint64_t day = 0;
  std::uint32_t period = 0;
  std::uint64_t abs_period = 0;
  double offered_units = 0.0;
  double realized_units = 0.0;
  bool measurement_gap = false;       ///< aggregate sample never arrived
  bool measurement_repaired = false;  ///< guard synthesized/clamped it
  std::uint64_t lost_stripes = 0;     ///< measurement stripes lost
  std::uint64_t price_groups = 0;     ///< fan-out groups serving the fleet
  std::uint64_t failed_attempts = 0;  ///< price fetch attempts dropped
  std::uint64_t degraded_groups = 0;  ///< groups serving stale/fallback
  bool solver_starved = false;        ///< re-pricing solve budget cut
  Health health = Health::kHealthy;
  bool storm_blackout = false;  ///< ground-truth regime state (attribution)
  bool storm_channel = false;
  bool storm_solver = false;
};

struct SettleSignals {
  std::uint64_t day = 0;
  std::uint64_t abs_period = 0;  ///< last period of the settled day
  bool schedule_changed = false;
  bool books_held = false;  ///< blackout hold: pacing is frozen, not judged
  double budget_spent = 0.0;
  double budget_pool = 0.0;  ///< 0 = unbudgeted mechanism
};

struct DaySignals {
  std::uint64_t day = 0;
  std::uint64_t abs_period = 0;  ///< last period of the day
  double peak_to_average_tip = 0.0;
  double peak_to_average_tdp = 0.0;
  double peak_realized_units = 0.0;
  std::uint64_t fallback_periods = 0;
  bool estimation_frozen = false;
  bool reanchored = false;
  bool reanchor_deferred = false;
  bool reanchor_rolled_back = false;
};

// ---------------------------------------------------------------------------

/// The complete serializable engine state — everything the observe_* calls
/// mutate. Checkpoints embed it (section kSecIncident) so a restored run
/// continues the alert stream bitwise; dumps embed it so triage sees the
/// exact detector posture at the moment of capture.
struct EngineState {
  std::uint64_t next_alert_seq = 0;
  std::uint64_t alerts_dropped = 0;
  std::vector<Alert> alerts;

  std::uint64_t next_incident_id = 0;
  std::vector<Incident> incidents;

  CusumDetector cusum_measurement;
  CusumDetector cusum_channel;
  CusumDetector cusum_solver;
  EwmaDetector ewma_p2a;
  EwmaDetector ewma_peak;

  bool has_prev_health = false;
  Health prev_health = Health::kHealthy;

  /// Loop-disturbance burn window: ring of the last slo_long_window
  /// bad/good bits.
  std::vector<std::uint8_t> slo_window;
  std::uint32_t slo_pos = 0;
  std::uint64_t slo_filled = 0;

  /// Trailing day-end P2A reductions for the P2A-floor objective.
  std::vector<double> p2a_window;

  std::uint64_t settles_seen = 0;
  std::uint64_t days_seen = 0;

  // Last observed position (dump metadata).
  std::uint64_t last_day = 0;
  std::uint32_t last_period = 0;
  std::uint64_t last_abs_period = 0;

  // Attribution memory (refreshed every period / day).
  bool storm_blackout = false;
  bool storm_channel = false;
  bool storm_solver = false;
  Health health = Health::kHealthy;
  std::int64_t last_reanchor_day = -1;
  ReanchorState last_reanchor = ReanchorState::kNone;

  /// Flight-recorder ring, chronological; overwrites oldest past capacity.
  std::vector<RecorderEntry> recorder;
  std::uint32_t recorder_pos = 0;
  std::uint64_t recorder_overwritten = 0;
};

/// Serialize/parse the engine state field-for-field (shared by the
/// checkpoint section and the dump). read_state validates every enum and
/// count against the remaining payload; failures are ser::FormatError.
void write_state(ser::Writer& w, const EngineState& state);
EngineState read_state(ser::Reader& r);

/// Serialize/parse the determinism-relevant config echo (checkpoint and
/// dump both carry it so a restore or a triage run knows the thresholds).
void write_config_echo(ser::Writer& w, const IncidentConfig& config);
IncidentConfig read_config_echo(ser::Reader& r);

/// True when every determinism-relevant field matches (execution knobs —
/// dump_path, commit latency budget — excluded).
bool config_echo_matches(const IncidentConfig& a, const IncidentConfig& b);

class IncidentEngine {
 public:
  explicit IncidentEngine(IncidentConfig config);

  const IncidentConfig& config() const { return config_; }

  /// Feed one simulated period's aggregates (call once per period, after
  /// the period's pricer observation settled).
  void observe_period(const PeriodSignals& s);

  /// Feed one mechanism settle (call once per settled day).
  void observe_settle(const SettleSignals& s);

  /// Feed one finished day's shape metrics (call after settle).
  void observe_day(const DaySignals& s);

  /// Wall-clock advisory: a streamed checkpoint commit took `seconds`.
  /// Emits an "incident.advisory" journal event past the budget; never
  /// touches the deterministic streams.
  void note_commit_latency(double seconds);

  // -- the deterministic streams ------------------------------------------
  const std::vector<Alert>& alerts() const { return state_.alerts; }
  std::uint64_t alerts_emitted() const { return state_.next_alert_seq; }
  std::uint64_t alerts_dropped() const { return state_.alerts_dropped; }
  const std::vector<Incident>& incidents() const { return state_.incidents; }
  std::uint64_t incidents_opened() const { return state_.next_incident_id; }
  std::uint64_t incidents_closed() const;
  std::uint64_t open_incidents() const;

  /// Recorder entries in chronological order (unwound from the ring).
  std::vector<RecorderEntry> recorder() const;

  // -- flight-recorder dump ("TDPI") --------------------------------------
  /// Self-contained snapshot: config echo, engine state, and (optionally)
  /// the wall-clock extras — per-phase timings read from the global
  /// registry plus commit-latency advisories. include_wall=false bytes are
  /// bitwise deterministic.
  std::vector<std::uint8_t> dump(bool include_wall = false) const;
  bool write_dump(const std::string& path, bool include_wall = false) const;

  // -- checkpoint plumbing ------------------------------------------------
  const EngineState& state() const { return state_; }
  void restore_state(EngineState state);

 private:
  void emit_alert(std::uint64_t day, std::uint32_t period,
                  std::uint64_t abs_period, AlertKind kind, double value,
                  double threshold);
  void open_incident(Objective objective, Severity severity,
                     std::uint64_t day, std::uint32_t period,
                     std::uint64_t abs_period, double burn_short,
                     double burn_long);
  void close_incident(Objective objective, std::uint64_t abs_period);
  Incident* find_open(Objective objective);
  void record(std::uint64_t abs_period, RecorderKind kind, double a,
              double b);
  void maybe_write_dump();

  IncidentConfig config_;
  EngineState state_;
  /// Wall-clock advisory samples — deliberately OUTSIDE EngineState: they
  /// are machine-dependent, never checkpointed, never compared.
  std::vector<double> wall_commit_latencies_;
};

/// Parsed dump (tests and tooling).
struct DumpData {
  std::uint64_t day = 0;
  std::uint32_t period = 0;
  bool has_wall = false;
  IncidentConfig config;
  EngineState state;
  /// Wall extras (absent when has_wall is false): every registry counter
  /// whose name ends in "_ns" (per-phase timings), name-sorted, plus the
  /// commit-latency advisory samples.
  std::vector<std::pair<std::string, std::uint64_t>> wall_counters;
  std::vector<double> wall_commit_latencies;
};

inline constexpr char kDumpMagic[] = "TDPI";
inline constexpr std::uint32_t kDumpVersion = 1;

std::vector<std::uint8_t> encode_dump(const DumpData& data);
DumpData decode_dump(const std::uint8_t* data, std::size_t size);
DumpData decode_dump(const std::vector<std::uint8_t>& bytes);

}  // namespace tdp::obs::incident
