// Byte codec for the incident engine: the checkpoint-embeddable state
// encoding (write_state/read_state), the determinism-relevant config echo,
// and the self-contained "TDPI" flight-recorder dump. Field order is
// frozen — these bytes are part of the determinism contract (dumps are
// compared bitwise across thread counts and kill/restore) and the
// pure-Python reader in tools/tdp_triage.py mirrors this layout exactly.
#include <algorithm>
#include <cstring>

#include "obs/incident/incident.hpp"

namespace tdp::obs::incident {
namespace {

// Section tags inside a "TDPI" dump.
constexpr std::uint32_t kDumpSecMeta = 1;
constexpr std::uint32_t kDumpSecConfig = 2;
constexpr std::uint32_t kDumpSecState = 3;
constexpr std::uint32_t kDumpSecWall = 4;

// Minimum encoded sizes, used to bound list counts against the bytes
// actually remaining before any allocation (hostile-input discipline).
constexpr std::size_t kAlertBytes = 8 + 8 + 4 + 8 + 1 + 8 + 8;
constexpr std::size_t kIncidentBytes =
    8 + 1 + 1 + 8 + 4 + 8 + 1 + 8 + 8 + 8 + 1 + 1 + 8 + 1;
constexpr std::size_t kRecorderBytes = 8 + 1 + 8 + 8;

std::uint64_t checked_count(ser::Reader& r, std::size_t unit,
                            const char* what) {
  const std::uint64_t count = r.u64();
  if (count > r.remaining() / unit) {
    throw ser::FormatError(std::string("implausible ") + what + " count");
  }
  return count;
}

Health read_health(ser::Reader& r) {
  const std::uint8_t v = r.u8();
  if (v > 2) throw ser::FormatError("bad health value");
  return static_cast<Health>(v);
}

ReanchorState read_reanchor(ser::Reader& r) {
  const std::int64_t v = r.i64();
  if (v < -1 || v > 3) throw ser::FormatError("bad reanchor state");
  return static_cast<ReanchorState>(v);
}

}  // namespace

void write_config_echo(ser::Writer& w, const IncidentConfig& config) {
  w.boolean(config.enabled);
  w.f64(config.cusum_k);
  w.f64(config.cusum_h);
  w.f64(config.channel_cusum_k);
  w.f64(config.channel_cusum_h);
  w.f64(config.ewma_alpha);
  w.f64(config.ewma_z);
  w.u64(config.ewma_min_days);
  w.f64(config.pacing_max_ratio);
  w.u64(config.pacing_grace_days);
  w.u32(config.slo_short_window);
  w.u32(config.slo_long_window);
  w.f64(config.slo_short_burn);
  w.f64(config.slo_long_burn);
  w.u64(config.slo_max_fallback_per_day);
  w.f64(config.slo_p2a_floor);
  w.u32(config.slo_p2a_window_days);
  w.u32(config.recorder_capacity);
  w.u32(config.max_alerts);
}

IncidentConfig read_config_echo(ser::Reader& r) {
  IncidentConfig config;
  config.enabled = r.boolean();
  config.cusum_k = r.f64();
  config.cusum_h = r.f64();
  config.channel_cusum_k = r.f64();
  config.channel_cusum_h = r.f64();
  config.ewma_alpha = r.f64();
  config.ewma_z = r.f64();
  config.ewma_min_days = r.u64();
  config.pacing_max_ratio = r.f64();
  config.pacing_grace_days = r.u64();
  config.slo_short_window = r.u32();
  config.slo_long_window = r.u32();
  config.slo_short_burn = r.f64();
  config.slo_long_burn = r.f64();
  config.slo_max_fallback_per_day = r.u64();
  config.slo_p2a_floor = r.f64();
  config.slo_p2a_window_days = r.u32();
  config.recorder_capacity = r.u32();
  config.max_alerts = r.u32();
  return config;
}

bool config_echo_matches(const IncidentConfig& a, const IncidentConfig& b) {
  return a.enabled == b.enabled && a.cusum_k == b.cusum_k &&
         a.cusum_h == b.cusum_h && a.channel_cusum_k == b.channel_cusum_k &&
         a.channel_cusum_h == b.channel_cusum_h &&
         a.ewma_alpha == b.ewma_alpha && a.ewma_z == b.ewma_z &&
         a.ewma_min_days == b.ewma_min_days &&
         a.pacing_max_ratio == b.pacing_max_ratio &&
         a.pacing_grace_days == b.pacing_grace_days &&
         a.slo_short_window == b.slo_short_window &&
         a.slo_long_window == b.slo_long_window &&
         a.slo_short_burn == b.slo_short_burn &&
         a.slo_long_burn == b.slo_long_burn &&
         a.slo_max_fallback_per_day == b.slo_max_fallback_per_day &&
         a.slo_p2a_floor == b.slo_p2a_floor &&
         a.slo_p2a_window_days == b.slo_p2a_window_days &&
         a.recorder_capacity == b.recorder_capacity &&
         a.max_alerts == b.max_alerts;
}

void write_state(ser::Writer& w, const EngineState& state) {
  w.u64(state.next_alert_seq);
  w.u64(state.alerts_dropped);
  w.u64(state.alerts.size());
  for (const Alert& alert : state.alerts) {
    w.u64(alert.seq);
    w.u64(alert.day);
    w.u32(alert.period);
    w.u64(alert.abs_period);
    w.u8(static_cast<std::uint8_t>(alert.kind));
    w.f64(alert.value);
    w.f64(alert.threshold);
  }

  w.u64(state.next_incident_id);
  w.u64(state.incidents.size());
  for (const Incident& incident : state.incidents) {
    w.u64(incident.id);
    w.u8(static_cast<std::uint8_t>(incident.objective));
    w.u8(static_cast<std::uint8_t>(incident.severity));
    w.u64(incident.open_day);
    w.u32(incident.open_period);
    w.u64(incident.open_abs_period);
    w.boolean(incident.closed);
    w.u64(incident.close_abs_period);
    w.f64(incident.burn_short);
    w.f64(incident.burn_long);
    std::uint8_t storm = 0;
    if (incident.storm_blackout) storm |= 1;
    if (incident.storm_channel) storm |= 2;
    if (incident.storm_solver) storm |= 4;
    w.u8(storm);
    w.u8(static_cast<std::uint8_t>(incident.health));
    w.i64(incident.last_reanchor_day);
    w.i64(static_cast<std::int64_t>(incident.last_reanchor));
  }

  for (const CusumDetector* cusum :
       {&state.cusum_measurement, &state.cusum_channel, &state.cusum_solver}) {
    w.f64(cusum->value());
    w.u64(cusum->samples());
    w.u64(cusum->firings());
  }
  for (const EwmaDetector* ewma : {&state.ewma_p2a, &state.ewma_peak}) {
    w.f64(ewma->mean());
    w.f64(ewma->variance());
    w.u64(ewma->samples());
  }

  w.boolean(state.has_prev_health);
  w.u8(static_cast<std::uint8_t>(state.prev_health));

  w.u64(state.slo_window.size());
  w.bytes(state.slo_window.data(), state.slo_window.size());
  w.u32(state.slo_pos);
  w.u64(state.slo_filled);
  w.vec_f64(state.p2a_window);

  w.u64(state.settles_seen);
  w.u64(state.days_seen);
  w.u64(state.last_day);
  w.u32(state.last_period);
  w.u64(state.last_abs_period);

  std::uint8_t storm = 0;
  if (state.storm_blackout) storm |= 1;
  if (state.storm_channel) storm |= 2;
  if (state.storm_solver) storm |= 4;
  w.u8(storm);
  w.u8(static_cast<std::uint8_t>(state.health));
  w.i64(state.last_reanchor_day);
  w.i64(static_cast<std::int64_t>(state.last_reanchor));

  w.u64(state.recorder.size());
  for (const RecorderEntry& entry : state.recorder) {
    w.u64(entry.abs_period);
    w.u8(static_cast<std::uint8_t>(entry.kind));
    w.f64(entry.a);
    w.f64(entry.b);
  }
  w.u32(state.recorder_pos);
  w.u64(state.recorder_overwritten);
}

EngineState read_state(ser::Reader& r) {
  EngineState state;
  state.next_alert_seq = r.u64();
  state.alerts_dropped = r.u64();
  const std::uint64_t alert_count = checked_count(r, kAlertBytes, "alert");
  state.alerts.reserve(alert_count);
  for (std::uint64_t i = 0; i < alert_count; ++i) {
    Alert alert;
    alert.seq = r.u64();
    alert.day = r.u64();
    alert.period = r.u32();
    alert.abs_period = r.u64();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(AlertKind::kPacingBound)) {
      throw ser::FormatError("bad alert kind");
    }
    alert.kind = static_cast<AlertKind>(kind);
    alert.value = r.f64();
    alert.threshold = r.f64();
    state.alerts.push_back(alert);
  }

  state.next_incident_id = r.u64();
  const std::uint64_t incident_count =
      checked_count(r, kIncidentBytes, "incident");
  state.incidents.reserve(incident_count);
  for (std::uint64_t i = 0; i < incident_count; ++i) {
    Incident incident;
    incident.id = r.u64();
    const std::uint8_t objective = r.u8();
    if (objective >= kObjectiveCount) {
      throw ser::FormatError("bad incident objective");
    }
    incident.objective = static_cast<Objective>(objective);
    const std::uint8_t severity = r.u8();
    if (severity > static_cast<std::uint8_t>(Severity::kCritical)) {
      throw ser::FormatError("bad incident severity");
    }
    incident.severity = static_cast<Severity>(severity);
    incident.open_day = r.u64();
    incident.open_period = r.u32();
    incident.open_abs_period = r.u64();
    incident.closed = r.boolean();
    incident.close_abs_period = r.u64();
    incident.burn_short = r.f64();
    incident.burn_long = r.f64();
    const std::uint8_t storm = r.u8();
    if (storm > 7) throw ser::FormatError("bad incident storm flags");
    incident.storm_blackout = (storm & 1) != 0;
    incident.storm_channel = (storm & 2) != 0;
    incident.storm_solver = (storm & 4) != 0;
    incident.health = read_health(r);
    incident.last_reanchor_day = r.i64();
    incident.last_reanchor = read_reanchor(r);
    state.incidents.push_back(incident);
  }

  for (CusumDetector* cusum :
       {&state.cusum_measurement, &state.cusum_channel, &state.cusum_solver}) {
    const double s = r.f64();
    const std::uint64_t samples = r.u64();
    const std::uint64_t firings = r.u64();
    cusum->restore(s, samples, firings);
  }
  for (EwmaDetector* ewma : {&state.ewma_p2a, &state.ewma_peak}) {
    const double mean = r.f64();
    const double var = r.f64();
    const std::uint64_t samples = r.u64();
    ewma->restore(mean, var, samples);
  }

  state.has_prev_health = r.boolean();
  state.prev_health = read_health(r);

  const std::uint64_t slo_size = checked_count(r, 1, "slo window");
  state.slo_window.resize(slo_size);
  for (std::uint64_t i = 0; i < slo_size; ++i) {
    const std::uint8_t bit = r.u8();
    if (bit > 1) throw ser::FormatError("bad slo window bit");
    state.slo_window[i] = bit;
  }
  state.slo_pos = r.u32();
  if (!state.slo_window.empty() && state.slo_pos >= state.slo_window.size()) {
    throw ser::FormatError("slo position out of range");
  }
  state.slo_filled = r.u64();
  state.p2a_window = r.vec_f64_finite(1 << 20);

  state.settles_seen = r.u64();
  state.days_seen = r.u64();
  state.last_day = r.u64();
  state.last_period = r.u32();
  state.last_abs_period = r.u64();

  const std::uint8_t storm = r.u8();
  if (storm > 7) throw ser::FormatError("bad storm flags");
  state.storm_blackout = (storm & 1) != 0;
  state.storm_channel = (storm & 2) != 0;
  state.storm_solver = (storm & 4) != 0;
  state.health = read_health(r);
  state.last_reanchor_day = r.i64();
  state.last_reanchor = read_reanchor(r);

  const std::uint64_t recorder_count =
      checked_count(r, kRecorderBytes, "recorder");
  state.recorder.reserve(recorder_count);
  for (std::uint64_t i = 0; i < recorder_count; ++i) {
    RecorderEntry entry;
    entry.abs_period = r.u64();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(RecorderKind::kReanchor)) {
      throw ser::FormatError("bad recorder kind");
    }
    entry.kind = static_cast<RecorderKind>(kind);
    entry.a = r.f64();
    entry.b = r.f64();
    state.recorder.push_back(entry);
  }
  state.recorder_pos = r.u32();
  if (state.recorder_pos > state.recorder.size()) {
    throw ser::FormatError("recorder position out of range");
  }
  state.recorder_overwritten = r.u64();
  return state;
}

std::vector<std::uint8_t> encode_dump(const DumpData& data) {
  ser::Writer w(kDumpMagic, kDumpVersion);

  std::size_t token = w.begin_section(kDumpSecMeta);
  w.u64(data.day);
  w.u32(data.period);
  w.u8(data.has_wall ? 1 : 0);
  w.end_section(token);

  token = w.begin_section(kDumpSecConfig);
  write_config_echo(w, data.config);
  w.end_section(token);

  token = w.begin_section(kDumpSecState);
  write_state(w, data.state);
  w.end_section(token);

  if (data.has_wall) {
    token = w.begin_section(kDumpSecWall);
    w.u64(data.wall_counters.size());
    for (const auto& [name, value] : data.wall_counters) {
      w.str(name);
      w.u64(value);
    }
    w.vec_f64(data.wall_commit_latencies);
    w.end_section(token);
  }
  return w.finish();
}

DumpData decode_dump(const std::uint8_t* data, std::size_t size) {
  ser::Reader r(data, size, kDumpMagic, kDumpVersion, kDumpVersion);
  DumpData out;
  bool seen_meta = false;
  bool seen_config = false;
  bool seen_state = false;
  while (!r.at_end()) {
    const std::uint32_t tag = r.begin_section();
    switch (tag) {
      case kDumpSecMeta: {
        out.day = r.u64();
        out.period = r.u32();
        const std::uint8_t flags = r.u8();
        if (flags > 1) throw ser::FormatError("bad dump flags");
        out.has_wall = flags != 0;
        seen_meta = true;
        r.end_section();
        break;
      }
      case kDumpSecConfig:
        out.config = read_config_echo(r);
        seen_config = true;
        r.end_section();
        break;
      case kDumpSecState:
        out.state = read_state(r);
        seen_state = true;
        r.end_section();
        break;
      case kDumpSecWall: {
        const std::uint64_t count = checked_count(r, 4 + 8, "wall counter");
        out.wall_counters.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          std::string name = r.str();
          const std::uint64_t value = r.u64();
          out.wall_counters.emplace_back(std::move(name), value);
        }
        out.wall_commit_latencies = r.vec_f64(1 << 20);
        r.end_section();
        break;
      }
      default:
        // Forward compatibility: a newer writer may add sections.
        r.skip_section();
        break;
    }
  }
  if (!seen_meta || !seen_config || !seen_state) {
    throw ser::FormatError("dump missing required section");
  }
  return out;
}

DumpData decode_dump(const std::vector<std::uint8_t>& bytes) {
  return decode_dump(bytes.data(), bytes.size());
}

}  // namespace tdp::obs::incident
