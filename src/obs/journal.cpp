#include "obs/journal.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace tdp::obs {
namespace {

std::atomic<bool>& journal_flag() {
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("TDP_OBS");
    return !(env != nullptr && env[0] == '0' && env[1] == '\0');
  }()};
  return flag;
}

void append_json_escaped(std::string& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_event_json(std::string& out, const JournalEvent& event) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "{\"seq\":%llu,\"kind\":\"",
                static_cast<unsigned long long>(event.seq));
  out += buf;
  append_json_escaped(out, event.kind);
  std::snprintf(buf, sizeof buf,
                "\",\"period\":%lld,\"shard\":%lld,\"user\":%lld,"
                "\"detail\":\"",
                static_cast<long long>(event.period),
                static_cast<long long>(event.shard),
                static_cast<long long>(event.user));
  out += buf;
  append_json_escaped(out, event.detail);
  out += "\",\"fields\":{";
  for (std::size_t f = 0; f < event.fields.size(); ++f) {
    if (f) out += ',';
    out += '"';
    append_json_escaped(out, event.fields[f].first);
    out += "\":";
    std::snprintf(buf, sizeof buf, "%.17g", event.fields[f].second);
    out += buf;
  }
  out += "}}";
}

bool write_text(const std::string& path, const std::string& text) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool complete = written == text.size();
  const bool closed = std::fclose(file) == 0;
  return complete && closed;
}

}  // namespace

bool journal_enabled() {
  return journal_flag().load(std::memory_order_relaxed);
}

void set_journal_enabled(bool enabled) {
  journal_flag().store(enabled, std::memory_order_relaxed);
}

Journal& Journal::global() {
  static Journal* instance = new Journal();
  return *instance;
}

void Journal::append(JournalEvent event) {
  if (!journal_enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  event.seq = next_seq_++;
  events_.push_back(std::move(event));
}

std::vector<JournalEvent> Journal::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::uint64_t Journal::appended() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

std::uint64_t Journal::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void Journal::set_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
}

void Journal::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  next_seq_ = 0;
  dropped_ = 0;
}

std::string Journal::json() const {
  const std::vector<JournalEvent> events = snapshot();
  std::string out = "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i) out += ',';
    append_event_json(out, events[i]);
  }
  out += ']';
  return out;
}

bool Journal::write_json(const std::string& path) const {
  return write_text(path, json());
}

std::string Journal::jsonl() const {
  const std::vector<JournalEvent> events = snapshot();
  std::string out;
  for (const JournalEvent& event : events) {
    append_event_json(out, event);
    out += '\n';
  }
  return out;
}

bool Journal::write_jsonl(const std::string& path) const {
  return write_text(path, jsonl());
}

void journal_record(
    std::string_view kind, std::int64_t period, std::int64_t shard,
    std::string detail,
    std::initializer_list<std::pair<std::string, double>> fields) {
  if (!journal_enabled()) return;
  JournalEvent event;
  event.kind = std::string(kind);
  event.period = period;
  event.shard = shard;
  event.detail = std::move(detail);
  event.fields.assign(fields.begin(), fields.end());
  Journal::global().append(std::move(event));
}

}  // namespace tdp::obs
