// Structured event journal: the control-plane flight recorder.
//
// Where the metrics registry answers "how many" and the trace answers
// "when", the journal answers "what exactly happened": pricer health-ladder
// transitions, measurement repairs and blackouts, channel staleness /
// fallback excursions, solver convergence records — each as one typed
// event with period/shard/user context and a small set of named numeric
// fields. Events are appended from the control loop (once per period, per
// transition, per solve — never from per-session hot paths), sequence-
// numbered, and bounded: past the capacity the journal counts drops
// instead of growing, so a chaos soak cannot exhaust memory.
//
// The journal is pure observation (nothing reads it back into the system),
// enabled by default and disabled together with metrics via TDP_OBS=0.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tdp::obs {

struct JournalEvent {
  std::uint64_t seq = 0;     ///< assigned on append, strictly increasing
  std::string kind;          ///< dotted taxonomy, e.g. "pricer.health"
  std::int64_t period = -1;  ///< period index (-1 = not period-scoped)
  std::int64_t shard = -1;   ///< shard / subscriber id (-1 = none)
  std::int64_t user = -1;    ///< user id (-1 = none)
  std::string detail;        ///< human-readable one-liner
  std::vector<std::pair<std::string, double>> fields;  ///< named numbers
};

/// Journal switch (default on; TDP_OBS=0 disables at startup).
bool journal_enabled();
void set_journal_enabled(bool enabled);

class Journal {
 public:
  static Journal& global();

  Journal() = default;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Append one event (assigns seq). No-op when the journal is disabled;
  /// counted as dropped once the capacity is reached.
  void append(JournalEvent event);

  /// Events retained so far, in seq order.
  std::vector<JournalEvent> snapshot() const;

  std::uint64_t appended() const;  ///< accepted events (retained)
  std::uint64_t dropped() const;   ///< rejected past capacity

  void set_capacity(std::size_t capacity);
  void clear();  ///< drop all events, reset seq/drop accounting

  /// JSON array of event objects:
  ///   {"seq":N,"kind":"...","period":P,"shard":S,"user":U,
  ///    "detail":"...","fields":{"name":value,...}}
  std::string json() const;
  bool write_json(const std::string& path) const;

  /// JSON Lines: one event object per line (same object shape as json()),
  /// trailing newline after every line. The streaming-friendly form that
  /// tools/validate_trace.py --journal-jsonl checks.
  std::string jsonl() const;
  bool write_jsonl(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<JournalEvent> events_;
  std::size_t capacity_ = 1 << 16;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Convenience append to the global journal.
void journal_record(
    std::string_view kind, std::int64_t period, std::int64_t shard,
    std::string detail,
    std::initializer_list<std::pair<std::string, double>> fields = {});

}  // namespace tdp::obs
