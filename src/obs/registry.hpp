// Deterministic metrics registry: named counters, gauges and fixed-bucket
// histograms shared by every layer (solver, fleet, TUBE control loop).
//
// Determinism contract — the property the rest of the repo's bitwise
// thread-count-independence tests rely on:
//
//   * Counter and histogram state is integer-only. Each instrument owns a
//     fixed array of cache-line-sized shard cells; a thread bumps the cell
//     picked by its (stable) shard slot and a snapshot folds the cells in
//     fixed index order. Integer addition is commutative and associative,
//     so the merged value depends only on *what* was recorded, never on
//     which thread recorded it or how work was split — snapshots are
//     bitwise identical for 1 thread and N threads doing the same work.
//   * Histograms accumulate their sample sum in fixed-point
//     (llround(value * scale), 64-bit), not floating point, for the same
//     reason: double addition is order-dependent, integer addition is not.
//   * Gauges are set-only (last write wins) and meant for single-logical-
//     writer state ("current health rung", "configured shard count").
//
// Overhead story: instruments are bumped through either
//
//   add()/observe()/set()           — gated on the global metrics switch
//                                     (one relaxed atomic load; the add is
//                                     skipped entirely when disabled), or
//   add_always()/observe_always()/set_always()
//                                   — ungated, for the handful of counters
//                                     that back pre-existing public APIs
//                                     (DeferralKernel::cache_hits, the
//                                     logger's suppression counts, the
//                                     fleet phase timers) and therefore
//                                     must keep counting in both modes.
//
// The switch defaults to ON and honours the TDP_OBS environment variable
// (TDP_OBS=0 disables the gated paths). Telemetry never feeds back into any
// simulated or optimized value — it is pure observation, so every numeric
// output of the system is bitwise identical with observability on or off.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tdp::obs {

/// Global gate for the gated instrument paths (default on; TDP_OBS=0
/// disables). Flipping it never loses the ungated "system of record"
/// counters.
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

namespace detail {

inline constexpr std::size_t kShardCells = 16;

/// One cache line per cell so concurrent writers on different slots never
/// false-share.
struct alignas(64) ShardCell {
  std::atomic<std::uint64_t> value{0};
};

/// Stable per-thread shard slot in [0, kShardCells). Assigned on first use;
/// a thread keeps its slot for its lifetime.
std::size_t thread_shard_slot();

}  // namespace detail

class Registry;

/// Monotone counter. Thread-safe; merged deterministically (integer sum
/// over fixed cell order).
class Counter {
 public:
  void inc() { add(1); }
  void add(std::uint64_t n) {
    if (metrics_enabled()) add_always(n);
  }
  /// Ungated variant for counters that back public APIs (see file header).
  void add_always(std::uint64_t n) {
    cells_[detail::thread_shard_slot()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  /// Merged value (sum of shard cells in fixed index order).
  std::uint64_t value() const;

  const std::string& name() const { return name_; }

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void reset();

  std::string name_;
  detail::ShardCell cells_[detail::kShardCells];
};

/// Set-only double value (single logical writer; last write wins).
class Gauge {
 public:
  void set(double value) {
    if (metrics_enabled()) set_always(value);
  }
  void set_always(double value);
  double value() const;

  const std::string& name() const { return name_; }

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void reset();

  std::string name_;
  std::atomic<std::uint64_t> bits_{0};  ///< bit_cast of the double
};

/// Fixed upper-bound bucket layout for a histogram, plus the fixed-point
/// scale used for the deterministic sample sum. Bounds must be strictly
/// ascending; an implicit +inf bucket is always appended.
struct HistogramSpec {
  std::vector<double> bounds;
  double scale = 1e9;  ///< sum is accumulated as llround(value * scale)

  /// bounds = start, start*factor, ... (count of them), e.g. latency decades.
  static HistogramSpec exponential(double start, double factor,
                                   std::size_t count);
};

/// Fixed-bucket histogram. Bucket counts and the fixed-point sum are
/// integers, so merged snapshots are thread-count-independent bitwise.
class Histogram {
 public:
  void observe(double value) {
    if (metrics_enabled()) observe_always(value);
  }
  void observe_always(double value);

  std::size_t buckets() const { return bounds_.size() + 1; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Merged count of samples in bucket i (i == buckets()-1 is the +inf
  /// overflow bucket).
  std::uint64_t bucket_count(std::size_t bucket) const;
  std::uint64_t count() const;
  /// Merged fixed-point sample sum (signed; divide by scale() for units).
  std::int64_t sum_fp() const;
  double sum() const;
  double scale() const { return scale_; }

  const std::string& name() const { return name_; }

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class Registry;
  Histogram(std::string name, const HistogramSpec& spec);
  void reset();

  std::string name_;
  std::vector<double> bounds_;
  double scale_;
  /// [cell][bucket] counts, then per-cell count and fixed-point sum.
  std::vector<detail::ShardCell> bucket_cells_;
  detail::ShardCell count_cells_[detail::kShardCells];
  detail::ShardCell sum_cells_[detail::kShardCells];
};

/// Baseline-and-delta view over a (global, ever-growing) counter: captures
/// the counter's value at construction; delta() is the growth since then.
/// This is how scoped consumers (FleetMetrics over one run_day, benches
/// over one repetition) read process-wide counters without resetting them.
class CounterDelta {
 public:
  explicit CounterDelta(Counter& counter)
      : counter_(counter), base_(counter.value()) {}
  std::uint64_t delta() const { return counter_.value() - base_; }

 private:
  Counter& counter_;
  std::uint64_t base_;
};

/// Point-in-time merged view of every registered instrument, listed in
/// registration order.
struct Snapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    double value = 0.0;
  };
  struct HistogramRow {
    std::string name;
    std::vector<double> bounds;          ///< upper edges (no +inf)
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 counts
    std::uint64_t count = 0;
    std::int64_t sum_fp = 0;
    double scale = 1e9;
    double sum = 0.0;
  };
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;
};

/// Name -> instrument registry. Get-or-create is mutex-guarded; returned
/// references are stable for the registry's lifetime, so call sites cache
/// them (`static obs::Counter& c = obs::Registry::global().counter(...)`).
class Registry {
 public:
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get or create. Within one kind, the same name always returns the same
  /// instrument; a histogram's spec is fixed by its first registration.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, const HistogramSpec& spec = {});

  /// Merged view in registration order.
  Snapshot snapshot() const;

  /// Zero every instrument's value, keeping all registrations (and every
  /// cached reference) valid. Test isolation only.
  void reset_values();

  /// Force one counter to an exact value (checkpoint restore: the restored
  /// process replays the saved run's counter levels so per-run deltas keep
  /// meaning). Get-or-create semantics, like counter().
  void set_counter_value(std::string_view name, std::uint64_t value);

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

}  // namespace tdp::obs
