// The fleet day loop: sharded population simulation driving the online
// pricer through the TUBE price channel.
//
//   ┌────────────┐ publish ┌──────────────┐ pull/group ┌─────────────┐
//   │ OnlinePricer├────────►│ PriceChannel ├───────────►│ PriceFanout │
//   └─────▲──────┘         └──────────────┘            └──────┬──────┘
//         │ measured aggregate (demand units)                 │ schedules
//   ┌─────┴────────┐  ordered merge   ┌────────┐  parallel    ▼
//   │ StripedAggreg│◄─────────────────┤ Shards │◄──── DeferralTable
//   └──────────────┘                  └────────┘      (per class)
//
// Each period: the pricer's current schedule is published; the fan-out
// groups pull it once; a per-class deferral table is built from the pulled
// schedules; shards simulate their user ranges on the thread pool; stripes
// merge in fixed shard order; the aggregate pre-deferral arrivals are fed
// back into OnlinePricer::observe_period, which re-tunes one reward. The
// first day(s) warm the deferral rings so the measured day sees the cyclic
// steady state the fluid model assumes.
//
// Determinism: population draws depend only on (seed, user, day, period);
// the shard layout is fixed by configuration, never derived from the thread
// count; the merge order is fixed. Per-period aggregates — and therefore
// the pricer's reward trajectory — are bit-identical for any thread count.
// Fault model: `FleetDriverConfig::fault` injects failures into the
// *observation* paths only — price pulls and usage telemetry — never into
// the simulated users themselves, so a chaos run and a clean run describe
// the same physical fleet and differ only in what the control loop sees.
// Slices act as measurement fault domains (a lost slice's stripe never
// reaches the pricer); price-pull faults hit the fan-out groups. When any
// fault can fire, the pricer's guard is armed (trust region + keep-reward
// on failure) unless an explicit guard config is given. A zero-fault plan
// leaves every path bit-identical to a driver with no plan at all.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "common/fault.hpp"
#include "dynamic/dynamic_optimizer.hpp"
#include "dynamic/online_pricer.hpp"
#include "fleet/aggregator.hpp"
#include "fleet/fleet_metrics.hpp"
#include "fleet/population.hpp"
#include "fleet/price_fanout.hpp"
#include "fleet/shard.hpp"
#include "mech/mechanism.hpp"
#include "obs/incident/incident.hpp"
#include "tube/measurement_guard.hpp"
#include "tube/price_channel.hpp"

namespace tdp::fleet {

struct FleetDriverConfig {
  PopulationConfig population;
  /// Shard count — the execution grouping for the per-period parallel
  /// sweep. Clamped to the slice count. Since aggregation is striped per
  /// canonical *slice* (see aggregator.hpp), any shard count yields
  /// bit-identical aggregates for a fixed slice layout.
  std::size_t shards = 64;
  /// Canonical slice count — part of the experiment definition (it fixes
  /// the floating-point reduction order and the measurement fault
  /// domains), deliberately NOT defaulted from the thread count. 0 = one
  /// slice per shard, which reproduces the pre-slice drivers bitwise.
  /// Clamped to the user count.
  std::size_t slices = 0;
  /// Worker threads for the per-period shard sweep; 0 = TDP_THREADS /
  /// hardware default. Any value yields bit-identical aggregates.
  std::size_t threads = 0;
  /// Days simulated before the measured day to warm the deferral rings.
  std::size_t warmup_days = 1;
  /// Feed measured aggregates into the pricing mechanism (off = the
  /// initial schedule is published unchanged all day).
  bool online_pricing = true;
  DynamicOptimizerOptions offline_options;
  /// Which pricing mechanism drives the fleet (DESIGN.md §13). The default
  /// TubeOnline run is bit-identical to the pre-arena driver; every
  /// mechanism sees the same fault plan, telemetry, and journal events.
  mech::MechanismConfig mechanism;

  /// Fault plan for the chaos run (default: nothing ever fires).
  FaultPlan fault;
  /// Staleness/retry policy for degraded price pulls.
  ChannelResilienceConfig resilience;
  /// Sanitization policy for the measured-aggregate feed.
  MeasurementGuardConfig measurement_guard;
  /// Pricer degradation policy; unset = PricerGuardConfig::protective()
  /// when the fault plan can fire, legacy no-op guard otherwise.
  std::optional<PricerGuardConfig> pricer_guard;
  /// Incident engine (off by default). A pure observer: the driver feeds
  /// it per-period/settle/day aggregates; enabling it never changes any
  /// simulated or priced value (bit-identity enforced by tests).
  obs::incident::IncidentConfig incident;
};

/// The fluid dynamic model whose expected arrivals match the population's:
/// the published mix on the continuous lag grid, at the paper's 48-period
/// load factor (capacity scales with mean demand so 12-period runs see the
/// same congestion regime). Shared by FleetDriver's offline solve and the
/// long-horizon driver's daily re-anchoring.
DynamicModel baseline_fluid_model(const Population& population);

class FleetDriver {
 public:
  explicit FleetDriver(FleetDriverConfig config);

  const Population& population() const { return population_; }
  /// The §III-B pricer — TubeOnline runs only (TDP_REQUIRE otherwise);
  /// mechanism() is the kind-agnostic view.
  const OnlinePricer& pricer() const;
  const mech::PricingMechanism& mechanism() const { return *mechanism_; }
  const PriceChannel& channel() const { return channel_; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t slice_count() const { return aggregator_.stripes(); }
  std::size_t thread_count() const { return threads_; }

  /// Simulate warmup_days + 1 days; returns metrics for the final day.
  /// Single-shot: a driver instance runs one experiment.
  FleetMetrics run_day();

  const FaultInjector& injector() const { return injector_; }

  /// The incident engine, or nullptr when not enabled.
  const obs::incident::IncidentEngine* incident_engine() const {
    return incident_.get();
  }

 private:
  /// What the telemetry path reports for one period (std::nullopt = the
  /// aggregate sample never arrived), plus whether shard stripes were lost.
  struct Observation {
    std::optional<double> sample;
    std::size_t lost_stripes = 0;
  };
  Observation observe(std::size_t period, std::uint64_t abs_period,
                      double calibration, const PeriodStats& merged) const;

  FleetDriverConfig config_;
  Population population_;
  FaultInjector injector_;
  /// The configured mechanism, planning against the baseline fluid model:
  /// the paper's demand mix at the paper's load factor — exactly the
  /// population's expected aggregate.
  std::unique_ptr<mech::PricingMechanism> mechanism_;
  PriceChannel channel_;
  PriceFanout fanout_;
  MeasurementGuard guard_;
  /// Heap-held so construction can run on the pool workers (first-touch
  /// NUMA placement of each shard's arena; see Shard's ctor comment).
  std::vector<std::unique_ptr<Shard>> shards_;
  StripedAggregator aggregator_;
  std::size_t threads_;
  std::unique_ptr<obs::incident::IncidentEngine> incident_;
  bool ran_ = false;
};

}  // namespace tdp::fleet
