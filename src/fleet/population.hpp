// Synthetic user population for fleet-scale day simulations.
//
// The paper's models work on *aggregate* demand mixes (Tables VII/VIII): so
// many demand units of patience class beta in each period. The fleet layer
// inverts that view: it synthesizes individual users whose expected behaviour
// reproduces those aggregates, so that a million-user day can be simulated
// and re-aggregated to drive the online pricer.
//
// Every per-user trait is a pure function of (population seed, user id),
// derived through non-mutating `Rng::fork_stream` splits. No draw depends on
// shard layout, thread count, or iteration order — the determinism contract
// the sharded driver and the 1-vs-N-thread bit-identity tests rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/demand_profile.hpp"
#include "core/kernel_plan.hpp"

namespace tdp::fleet {

struct PopulationConfig {
  /// Fleet size. The aggregate expected demand profile is independent of
  /// this: more users means finer-grained, lower-variance aggregates.
  std::uint64_t users = 100000;
  /// Periods per day; must be 48 or 12 (the paper's published mixes).
  std::size_t periods = 48;
  std::uint64_t seed = 20110611;
  /// Expected sessions per user per day (sets session granularity, not
  /// aggregate volume — volumes are calibrated to the paper profile).
  double sessions_per_day = 4.0;
};

/// Immutable per-user traits, derived on demand from (seed, user id).
struct UserSpec {
  /// Index into the ten Table IV patience classes (waiting functions).
  std::uint32_t patience_class = 0;
  /// Multiplicative demand factor in [0.5, 1.5), population mean 1.0:
  /// individual users differ, aggregates stay calibrated in expectation.
  double activity = 1.0;
};

class Population {
 public:
  explicit Population(PopulationConfig config);

  std::uint64_t users() const { return config_.users; }
  std::size_t periods() const { return config_.periods; }
  std::size_t patience_classes() const { return waiting_.size(); }
  const PopulationConfig& config() const { return config_; }

  /// User traits; O(1), stateless, shard-independent.
  UserSpec spec(std::uint64_t user) const;

  /// The RNG stream for one user's draws in one period of the day. Distinct
  /// (user, period) pairs get statistically independent streams, so periods
  /// can be replayed or simulated in any grouping with identical results.
  Rng user_period_rng(std::uint64_t user, std::size_t period) const;

  /// The per-user parent stream: user_period_rng(u, p) equals
  /// user_rng(u).fork_stream(p) bitwise. Shards cache user_rng(u).state()
  /// so the session loop can fork period streams in SIMD batches.
  Rng user_rng(std::uint64_t user) const { return root_.fork_stream(user); }

  /// Expected sessions per period for a user of class `cls` with activity 1
  /// (scale by UserSpec::activity for a concrete user).
  double session_rate(std::uint32_t cls, std::size_t period) const;

  /// Mean session size in user work units (exponentially distributed).
  double mean_session_size() const { return mean_session_size_; }

  /// Waiting function of each patience class (continuous-lag normalization,
  /// matching the dynamic model the aggregates feed).
  const WaitingFunctionPtr& waiting(std::uint32_t cls) const {
    return waiting_[cls];
  }

  /// Precomputed uniform-arrival lag weights for a patience class — bitwise
  /// identical to lag_weight() on waiting(cls) but without the per-node
  /// quadrature dispatch. DeferralTable rebuilds read through this.
  const UniformLagWeightTable& lag_table(std::uint32_t cls) const {
    return lag_tables_[cls];
  }

  /// Patience index (beta) of class `cls` as calibrated at construction.
  double patience_index(std::uint32_t cls) const;

  /// Lag-weight tables for per-class patience indices scaled by
  /// `beta_scale` (one factor per class, each > 0). A scale of exactly 1.0
  /// for every class is bitwise identical to lag_table(). The long-horizon
  /// driver feeds these into DeferralTable's lag_override to drift the
  /// population day by day without rebuilding the population.
  std::vector<UniformLagWeightTable> scaled_lag_tables(
      const std::vector<double>& beta_scale) const;

  /// Fraction of users in each patience class (Table VII day totals).
  const std::vector<double>& class_shares() const { return class_share_; }

  /// Conversion factor from aggregate user work units to the paper's demand
  /// units: `aggregate_work * unit_calibration()` is directly comparable to
  /// the Table V/IX per-period demand the dynamic model is built from.
  double unit_calibration() const { return unit_calibration_; }

  /// Expected aggregate demand per period in demand units — by construction
  /// the paper's published per-period totals (Table V / Table IX).
  const std::vector<double>& expected_demand_units() const {
    return expected_units_;
  }

 private:
  PopulationConfig config_;
  Rng root_;  ///< never advanced; all streams fork off it
  double mean_session_size_ = 1.0;
  double unit_calibration_ = 1.0;
  std::vector<WaitingFunctionPtr> waiting_;
  std::vector<UniformLagWeightTable> lag_tables_;  ///< per class
  std::vector<double> class_share_;      ///< per class, sums to 1
  std::vector<double> class_cdf_;        ///< cumulative shares
  std::vector<double> session_rate_;     ///< [cls * periods + period]
  std::vector<double> expected_units_;   ///< per period, demand units
};

}  // namespace tdp::fleet
