// Group fan-out of the published reward schedule to a million users.
//
// The TUBE prototype's pull-once-per-period discipline is per GUI; cloning
// it per user would keep a cached schedule per subscriber — O(users) memory
// and O(users) server fetches per period. At fleet scale users are binned
// into *groups* (by patience class here): each group holds exactly one
// PriceChannel subscription, pulls once per period, and every user in the
// group reads the group's cache. Memory and server traffic are O(groups),
// independent of fleet size, while the channel's fetch accounting still
// proves the once-per-period discipline held.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "math/vector_ops.hpp"
#include "tube/price_channel.hpp"

namespace tdp::fleet {

class PriceFanout {
 public:
  /// Registers `groups` subscribers on the channel.
  PriceFanout(PriceChannel& channel, std::size_t groups);

  std::size_t groups() const { return subscribers_.size(); }

  /// Pull each group's schedule for absolute period `abs_period` (one
  /// server fetch per group; later syncs in the same period hit caches).
  void sync(std::size_t abs_period);

  /// The schedule group `group` saw at the last sync.
  const math::Vector& schedule(std::size_t group) const;

  /// Total server fetches across all groups — the fan-out's entire load on
  /// the price server; compare against users * periods for the savings.
  std::size_t total_server_fetches() const;

  /// One group's degradation counters (see SubscriberTelemetry).
  SubscriberTelemetry telemetry(std::size_t group) const;

  /// All groups' degradation counters summed (missed_streak is the max
  /// across groups, not a sum — it is a level, not a count).
  SubscriberTelemetry total_telemetry() const;

  /// Snapshot each group's last-pulled schedule (checkpoint support; the
  /// subscriber-side state lives in the channel and is exported there).
  std::vector<math::Vector> export_schedules() const { return schedules_; }

  /// Install snapshotted schedules (group count must match).
  void restore_schedules(const std::vector<math::Vector>& schedules);

 private:
  PriceChannel* channel_;
  std::vector<std::size_t> subscribers_;     ///< channel subscriber ids
  std::vector<math::Vector> schedules_;      ///< per group, last pulled
};

}  // namespace tdp::fleet
