// A shard: one contiguous user range of the fleet, simulated locally.
//
// Each shard owns users [begin, end) and walks them once per period: Poisson
// session arrivals at the user's diurnal rate, exponential session sizes,
// and per-session deferral decisions from a precomputed per-class deferral
// table (aggregate waiting-function math — no per-packet netsim). Work a
// session defers is parked in a per-shard ring and re-enters the shard's
// arrival stream when its target period comes up, mirroring the backlog
// carry-over of the dynamic model at user granularity.
//
// Shards never share mutable state: every draw comes from the population's
// per-(user, period) streams and every result lands in the shard's own
// accumulator stripe, so a period can be simulated by any number of threads
// with bit-identical totals (see aggregator.hpp for the merge discipline).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fleet/population.hpp"
#include "math/vector_ops.hpp"

namespace tdp::fleet {

/// Per-class deferral decision table for one period, rebuilt by the driver
/// whenever the published reward schedule changes. For class c and lag
/// t = 1..n-1, `cumulative(c, t)` is the probability a session defers by at
/// most t periods; the residual mass stays put.
class DeferralTable {
 public:
  DeferralTable(const Population& population,
                const std::vector<const math::Vector*>& schedule_by_class,
                std::size_t period);

  std::size_t periods() const { return periods_; }

  /// Inclusive cumulative deferral probability up to lag t (t >= 1).
  double cumulative(std::uint32_t cls, std::size_t lag) const {
    return cumulative_[cls * periods_ + lag];
  }

  /// Reward per unit of work paid for deferring by lag t (the published
  /// reward of the target period under the class's schedule).
  double reward(std::uint32_t cls, std::size_t lag) const {
    return reward_[cls * periods_ + lag];
  }

  /// Sessions whose raw deferral probabilities summed above one and were
  /// renormalized (only when rewards exceed the validity bound).
  std::size_t probability_clamps() const { return probability_clamps_; }

 private:
  std::size_t periods_;
  std::vector<double> cumulative_;  ///< [cls * periods + lag], lag >= 1
  std::vector<double> reward_;      ///< [cls * periods + lag]
  std::size_t probability_clamps_ = 0;
};

/// One period's totals from one shard (or, after merging, the fleet).
struct PeriodStats {
  double offered_work = 0.0;    ///< fresh pre-deferral work (TIP baseline)
  double realized_work = 0.0;   ///< post-deferral arrivals incl. deferred-in
  double deferred_work = 0.0;   ///< work pushed to later periods
  double reward_paid = 0.0;     ///< reward owed for work deferred *into* now
  std::uint64_t sessions = 0;
  std::uint64_t deferred_sessions = 0;

  PeriodStats& operator+=(const PeriodStats& other);
};

class Shard {
 public:
  /// Caches the specs of users [begin, end) so the per-period walk is pure
  /// arithmetic; the cache is a function of user ids only, never of which
  /// shard holds them.
  Shard(const Population& population, std::uint64_t begin_user,
        std::uint64_t end_user);

  std::uint64_t begin_user() const { return begin_; }
  std::uint64_t end_user() const { return end_; }
  std::uint64_t users() const { return end_ - begin_; }

  /// Simulate one period of one day. Periods must be called in day order
  /// (the deferral ring advances once per call). `day` separates the RNG
  /// streams of multi-day runs.
  PeriodStats simulate_period(std::size_t day, std::size_t period,
                              const DeferralTable& table);

  /// Drop all parked deferred work (fresh-day reset for experiments).
  void reset();

 private:
  const Population* population_;
  std::uint64_t begin_;
  std::uint64_t end_;
  std::vector<UserSpec> specs_;         ///< specs_[u - begin_]
  std::vector<double> deferred_ring_;   ///< work arriving l periods ahead
  std::vector<double> reward_ring_;     ///< reward owed with that work
  std::size_t ring_head_ = 0;
};

}  // namespace tdp::fleet
