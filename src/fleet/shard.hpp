// A shard: one contiguous run of canonical slices, simulated locally.
//
// PR 2 fixed the floating-point reduction order by making the *shard* the
// aggregation unit, which made aggregates thread-count-independent but left
// the shard count itself part of the experiment definition. Long-horizon
// checkpoint/restore needs more: a checkpoint written by a 4-shard run must
// restore onto 6 shards (or 1) with bitwise-identical aggregates. The unit
// of determinism is therefore demoted below the shard, to the **slice**:
//
//   * the population is partitioned into `slices` contiguous user ranges
//     (the canonical layout, fixed by configuration and recorded in every
//     checkpoint);
//   * per-period stats are accumulated *per slice* (users walked in
//     ascending id order within a slice) and merged in ascending slice
//     order — the reduction order is a function of the slice layout alone;
//   * deferral rings (the only mutable per-user-range state) live per
//     slice, so a checkpoint can hand any slice's ring to whichever shard
//     owns it after a reshard;
//   * measurement fault domains are slices, so an active FaultPlan fires
//     identically under any shard grouping.
//
// A shard is now purely an *execution* grouping: it owns slices
// [begin_slice, end_slice) and walks them once per period. Any shard count
// from 1 to `slices` — and any thread count — yields bit-identical
// aggregates; a FleetDriver configured with slices == shards reproduces the
// pre-slice behaviour bitwise (one slice per shard is exactly the old
// layout).
//
// Shards never share mutable state: every draw comes from the population's
// per-(user, period) streams and every result lands in the owning slice's
// accumulator stripe, so a period can be simulated by any number of threads
// with bit-identical totals (see aggregator.hpp for the merge discipline).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/arena.hpp"
#include "core/kernel_plan.hpp"
#include "fleet/population.hpp"
#include "math/vector_ops.hpp"

namespace tdp::fleet {

class StripedAggregator;

/// First user of `slice` under the canonical contiguous layout: slice s
/// covers users [slice_user_begin(s), slice_user_begin(s+1)). Pure
/// function of (users, slices) — never of shard or thread counts.
inline std::uint64_t slice_user_begin(std::uint64_t users,
                                      std::size_t slices,
                                      std::size_t slice) {
  return users * static_cast<std::uint64_t>(slice) /
         static_cast<std::uint64_t>(slices);
}

/// Per-class deferral decision table for one period, rebuilt by the driver
/// whenever the published reward schedule changes. For class c and lag
/// t = 1..n-1, `cumulative(c, t)` is the probability a session defers by at
/// most t periods; the residual mass stays put.
class DeferralTable {
 public:
  /// Standard table on the population's built-in lag weights.
  DeferralTable(const Population& population,
                const std::vector<const math::Vector*>& schedule_by_class,
                std::size_t period)
      : DeferralTable(population, schedule_by_class, period, nullptr) {}

  /// Drift-aware variant: `lag_override` (one table per patience class)
  /// replaces the population's lag weights — the long-horizon driver feeds
  /// tables built from drifted patience indices here.
  DeferralTable(const Population& population,
                const std::vector<const math::Vector*>& schedule_by_class,
                std::size_t period,
                const std::vector<UniformLagWeightTable>* lag_override);

  std::size_t periods() const { return periods_; }

  /// Inclusive cumulative deferral probability up to lag t (t >= 1).
  double cumulative(std::uint32_t cls, std::size_t lag) const {
    return cumulative_[cls * periods_ + lag];
  }

  /// Reward per unit of work paid for deferring by lag t (the published
  /// reward of the target period under the class's schedule).
  double reward(std::uint32_t cls, std::size_t lag) const {
    return reward_[cls * periods_ + lag];
  }

  /// Smallest lag (>= 1) with cumulative(cls, lag) > draw — the lag the
  /// linear scan `while (draw >= cumulative(cls, lag)) ++lag` selects, via
  /// a branchless binary search (the predicate compiles to cmov, so the
  /// session loop never mispredicts on the deferral draw). Requires
  /// draw < cumulative(cls, periods() - 1); the caller's stay-threshold
  /// check guarantees it.
  std::size_t find_lag(std::uint32_t cls, double draw) const {
    const double* row = cumulative_.data() + cls * periods_ + 1;
    std::size_t base = 0;
    std::size_t len = periods_ - 1;
    while (len > 1) {
      const std::size_t half = len / 2;
      base += (row[base + half - 1] <= draw) ? half : 0;
      len -= half;
    }
    return base + 1;
  }

  /// Sessions whose raw deferral probabilities summed above one and were
  /// renormalized (only when rewards exceed the validity bound).
  std::size_t probability_clamps() const { return probability_clamps_; }

 private:
  std::size_t periods_;
  std::vector<double> cumulative_;  ///< [cls * periods + lag], lag >= 1
  std::vector<double> reward_;      ///< [cls * periods + lag]
  std::size_t probability_clamps_ = 0;
};

/// One period's totals from one slice (or, after merging, the fleet).
struct PeriodStats {
  double offered_work = 0.0;    ///< fresh pre-deferral work (TIP baseline)
  double realized_work = 0.0;   ///< post-deferral arrivals incl. deferred-in
  double deferred_work = 0.0;   ///< work pushed to later periods
  double reward_paid = 0.0;     ///< reward owed for work deferred *into* now
  std::uint64_t sessions = 0;
  std::uint64_t deferred_sessions = 0;

  PeriodStats& operator+=(const PeriodStats& other);
};

class Shard {
 public:
  /// Owns canonical slices [begin_slice, end_slice) of a `total_slices`
  /// layout. Caches the covered users' traits in SoA arrays (class,
  /// activity, parent RNG stream) so the per-period walk is pure
  /// arithmetic; the cache is a function of user ids only, never of which
  /// shard holds them. All per-user arrays live in a private arena whose
  /// pages are first written here — construct each shard on its owning
  /// worker thread and the pages land on that worker's NUMA node
  /// (first-touch; a no-op on single-node hosts).
  Shard(const Population& population, std::size_t begin_slice,
        std::size_t end_slice, std::size_t total_slices);

  Shard(Shard&&) noexcept = default;
  Shard& operator=(Shard&&) noexcept = default;

  std::size_t begin_slice() const { return begin_slice_; }
  std::size_t end_slice() const { return end_slice_; }
  std::uint64_t begin_user() const { return begin_; }
  std::uint64_t end_user() const { return end_; }
  std::uint64_t users() const { return end_ - begin_; }

  /// Simulate one period of one day, recording one stripe per owned slice
  /// into `aggregator` (race-free: distinct shards own distinct slices).
  /// Periods must be called in day order (the deferral rings advance once
  /// per call). `day` separates the RNG streams of multi-day runs.
  void simulate_period(std::size_t day, std::size_t period,
                       const DeferralTable& table,
                       StripedAggregator& aggregator);

  /// Drop all parked deferred work (fresh-day reset for experiments).
  void reset();

  // ---- Checkpoint access (slice-granular, reshard-safe) ------------------

  /// Current ring rotation (identical for every slice: rings advance once
  /// per simulated period).
  std::size_t ring_head() const { return ring_head_; }
  void set_ring_head(std::size_t head);

  /// Copy one owned slice's rings out (period-indexed, length periods()).
  void export_slice_rings(std::size_t slice, std::vector<double>& work,
                          std::vector<double>& reward) const;

  /// Install one owned slice's rings (sizes must match the period count).
  void restore_slice_rings(std::size_t slice,
                           const std::vector<double>& work,
                           const std::vector<double>& reward);

 private:
  /// Users per simd::fork_uniform_batch call in the session loop — big
  /// enough to amortize dispatch, small enough that the u1/state scratch
  /// stays in L1 (2 KiB per array).
  static constexpr std::size_t kBatch = 256;

  const Population* population_;
  std::size_t begin_slice_;
  std::size_t end_slice_;
  std::uint64_t begin_;
  std::uint64_t end_;
  std::vector<std::uint64_t> slice_user_end_;  ///< per owned slice

  /// Backing store for every per-user array below (see ctor comment).
  Arena arena_;
  // SoA user traits, indexed by u - begin_. user_stream_ holds the state
  // of population->user_rng(u): forking the period off it in SIMD batches
  // reproduces user_period_rng(u, p) bitwise.
  std::uint32_t* cls_ = nullptr;
  double* activity_ = nullptr;
  std::uint64_t* user_stream_ = nullptr;
  /// Per-slice deferral rings, [local_slice * periods + slot]: work
  /// arriving `lag` periods ahead and the reward owed with it.
  double* deferred_ring_ = nullptr;
  double* reward_ring_ = nullptr;
  std::size_t ring_slots_ = 0;
  std::size_t ring_head_ = 0;
};

}  // namespace tdp::fleet
