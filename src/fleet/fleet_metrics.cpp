#include "fleet/fleet_metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace tdp::fleet {
namespace {

void append_number(std::string& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

void append_field(std::string& out, const char* key, double value) {
  out += '"';
  out += key;
  out += "\":";
  append_number(out, value);
}

void append_field(std::string& out, const char* key, std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%llu",
                static_cast<unsigned long long>(value));
  out += '"';
  out += key;
  out += "\":";
  out += buffer;
}

void append_array(std::string& out, const char* key,
                  const std::vector<double>& values) {
  out += '"';
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ',';
    append_number(out, values[i]);
  }
  out += ']';
}

}  // namespace

double peak_to_average(const std::vector<double>& profile) {
  if (profile.empty()) return 0.0;
  const double total =
      std::accumulate(profile.begin(), profile.end(), 0.0);
  if (total <= 0.0) return 0.0;
  const double peak = *std::max_element(profile.begin(), profile.end());
  return peak * static_cast<double>(profile.size()) / total;
}

std::string FleetMetrics::to_json() const {
  std::string out = "{";
  append_field(out, "users", static_cast<std::uint64_t>(users));
  out += ',';
  append_field(out, "periods", static_cast<std::uint64_t>(periods));
  out += ',';
  append_field(out, "shards", static_cast<std::uint64_t>(shards));
  out += ',';
  append_field(out, "threads", static_cast<std::uint64_t>(threads));
  out += ',';
  append_field(out, "days", static_cast<std::uint64_t>(days));
  out += ',';
  append_field(out, "sessions", sessions);
  out += ',';
  append_field(out, "deferred_sessions", deferred_sessions);
  out += ',';
  append_field(out, "wall_seconds", wall_seconds);
  out += ',';
  append_field(out, "sessions_per_second", sessions_per_second);
  out += ',';
  append_field(out, "user_periods_per_second", user_periods_per_second);
  out += ',';
  append_field(out, "publish_seconds", publish_seconds);
  out += ',';
  append_field(out, "table_seconds", table_seconds);
  out += ',';
  append_field(out, "simulate_seconds", simulate_seconds);
  out += ',';
  append_field(out, "aggregate_seconds", aggregate_seconds);
  out += ',';
  append_field(out, "pricer_seconds", pricer_seconds);
  out += ',';
  append_field(out, "peak_to_average_tip", peak_to_average_tip);
  out += ',';
  append_field(out, "peak_to_average_tdp", peak_to_average_tdp);
  out += ',';
  append_field(out, "reward_paid_units", reward_paid_units);
  out += ',';
  append_field(out, "pricer_expected_cost", pricer_expected_cost);
  out += ',';
  append_field(out, "price_groups",
               static_cast<std::uint64_t>(price_groups));
  out += ',';
  append_field(out, "price_server_fetches",
               static_cast<std::uint64_t>(price_server_fetches));
  out += ',';
  append_field(out, "price_pull_drops",
               static_cast<std::uint64_t>(price_pull_drops));
  out += ',';
  append_field(out, "price_pull_retries",
               static_cast<std::uint64_t>(price_pull_retries));
  out += ',';
  append_field(out, "price_stale_periods",
               static_cast<std::uint64_t>(price_stale_periods));
  out += ',';
  append_field(out, "price_fallback_periods",
               static_cast<std::uint64_t>(price_fallback_periods));
  out += ',';
  append_field(out, "price_skewed_periods",
               static_cast<std::uint64_t>(price_skewed_periods));
  out += ',';
  append_field(out, "price_recoveries",
               static_cast<std::uint64_t>(price_recoveries));
  out += ',';
  append_field(out, "shard_stripes_lost",
               static_cast<std::uint64_t>(shard_stripes_lost));
  out += ',';
  append_field(out, "measurement_gaps",
               static_cast<std::uint64_t>(measurement_gaps));
  out += ',';
  append_field(out, "measurement_repairs",
               static_cast<std::uint64_t>(measurement_repairs));
  out += ',';
  append_field(out, "solver_failures", solver_failures);
  out += ',';
  append_field(out, "reward_clamps", reward_clamps);
  out += ',';
  append_field(out, "skipped_updates", skipped_updates);
  out += ',';
  append_field(out, "health_transitions", health_transitions);
  out += ',';
  append_field(out, "degraded_observations", degraded_observations);
  out += ',';
  append_field(out, "fallback_observations", fallback_observations);
  out += ',';
  append_field(out, "pricer_recoveries", pricer_recoveries);
  out += ',';
  append_field(out, "max_recovery_periods", max_recovery_periods);
  out += ',';
  append_field(out, "incident_alerts", incident_alerts);
  out += ',';
  append_field(out, "incidents_opened", incidents_opened);
  out += ',';
  append_field(out, "incidents_closed", incidents_closed);
  out += ',';
  out += "\"final_health\":\"";
  out += final_health;
  out += "\",";
  out += "\"mechanism\":\"";
  out += mechanism;
  out += "\",";
  append_field(out, "rebate_budget_pool", rebate_budget_pool);
  out += ',';
  append_field(out, "rebate_budget_spent", rebate_budget_spent);
  out += ',';
  append_array(out, "offered_units", offered_units);
  out += ',';
  append_array(out, "realized_units", realized_units);
  out += '}';
  return out;
}

}  // namespace tdp::fleet
