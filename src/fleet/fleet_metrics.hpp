// Fleet-run metrics: throughput, peak-to-average, cost — JSON-exportable so
// the fleet becomes a tracked perf axis alongside solver speed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tdp::fleet {

struct FleetMetrics {
  // Configuration echo.
  std::uint64_t users = 0;
  std::size_t periods = 0;
  std::size_t shards = 0;
  std::size_t threads = 0;
  std::size_t days = 0;  ///< total days simulated (incl. warmup)

  // Volume (measured day only).
  std::uint64_t sessions = 0;
  std::uint64_t deferred_sessions = 0;

  // Throughput over the whole run (all days).
  double wall_seconds = 0.0;
  double sessions_per_second = 0.0;
  double user_periods_per_second = 0.0;

  // Traffic shape (measured day, demand units per period).
  std::vector<double> offered_units;   ///< pre-deferral (TIP baseline)
  std::vector<double> realized_units;  ///< post-deferral (under TDP)
  double peak_to_average_tip = 0.0;
  double peak_to_average_tdp = 0.0;

  // Economics (measured day, money units).
  double reward_paid_units = 0.0;      ///< realized reward payouts
  double pricer_expected_cost = 0.0;   ///< model's view after all updates

  // Fan-out accounting.
  std::size_t price_groups = 0;
  std::size_t price_server_fetches = 0;

  /// Compact single-object JSON (profiles included as arrays).
  std::string to_json() const;
};

/// max(profile) / mean(profile); 0 for an empty or all-zero profile.
double peak_to_average(const std::vector<double>& profile);

}  // namespace tdp::fleet
