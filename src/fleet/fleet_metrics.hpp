// Fleet-run metrics: throughput, peak-to-average, cost — JSON-exportable so
// the fleet becomes a tracked perf axis alongside solver speed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tdp::fleet {

struct FleetMetrics {
  // Configuration echo.
  std::uint64_t users = 0;
  std::size_t periods = 0;
  std::size_t shards = 0;
  std::size_t threads = 0;
  std::size_t days = 0;  ///< total days simulated (incl. warmup)

  // Volume (measured day only).
  std::uint64_t sessions = 0;
  std::uint64_t deferred_sessions = 0;

  // Throughput over the whole run (all days).
  double wall_seconds = 0.0;
  double sessions_per_second = 0.0;
  double user_periods_per_second = 0.0;

  // Per-phase wall time over the whole run (seconds). The phases cover the
  // period loop end to end, so they sum to ~wall_seconds; examples/
  // profile_day prints this breakdown for a 100k-user day.
  double publish_seconds = 0.0;    ///< schedule publish + fan-out sync
  double table_seconds = 0.0;      ///< per-period DeferralTable builds
  double simulate_seconds = 0.0;   ///< sharded user walks (thread pool)
  double aggregate_seconds = 0.0;  ///< stripe merges + metric folds
  double pricer_seconds = 0.0;     ///< telemetry, guard, online re-solve

  // Traffic shape (measured day, demand units per period).
  std::vector<double> offered_units;   ///< pre-deferral (TIP baseline)
  std::vector<double> realized_units;  ///< post-deferral (under TDP)
  double peak_to_average_tip = 0.0;
  double peak_to_average_tdp = 0.0;

  // Economics (measured day, money units).
  double reward_paid_units = 0.0;      ///< realized reward payouts
  double pricer_expected_cost = 0.0;   ///< model's view after all updates

  // Mechanism arena (DESIGN.md §13).
  std::string mechanism = "tube_online";  ///< active pricing mechanism
  double rebate_budget_pool = 0.0;   ///< daily pool (0 = unbudgeted)
  double rebate_budget_spent = 0.0;  ///< measured day's settle payout

  // Fan-out accounting.
  std::size_t price_groups = 0;
  std::size_t price_server_fetches = 0;

  // Robustness accounting (all days; zero on a fault-free run).
  std::size_t price_pull_drops = 0;       ///< dropped fetch attempts
  std::size_t price_pull_retries = 0;     ///< extra attempts after a drop
  std::size_t price_stale_periods = 0;    ///< group-periods on stale cache
  std::size_t price_fallback_periods = 0; ///< group-periods on flat-TIP
  std::size_t price_skewed_periods = 0;   ///< group-periods lost to skew
  std::size_t price_recoveries = 0;       ///< fetch succeeded after misses
  std::size_t shard_stripes_lost = 0;     ///< shard telemetry never arrived
  std::size_t measurement_gaps = 0;       ///< whole-aggregate losses
  std::size_t measurement_repairs = 0;    ///< guard-sanitized samples
  std::uint64_t solver_failures = 0;
  std::uint64_t reward_clamps = 0;        ///< trust-region bound steps
  std::uint64_t skipped_updates = 0;      ///< FALLBACK froze the schedule
  std::uint64_t health_transitions = 0;
  std::uint64_t degraded_observations = 0;
  std::uint64_t fallback_observations = 0;
  std::uint64_t pricer_recoveries = 0;
  std::uint64_t max_recovery_periods = 0;
  std::string final_health = "HEALTHY";

  // Incident engine (zero when the engine is off). Deterministic counts
  // of the engine's alert/incident streams over the whole run.
  std::uint64_t incident_alerts = 0;
  std::uint64_t incidents_opened = 0;
  std::uint64_t incidents_closed = 0;

  /// Compact single-object JSON (profiles included as arrays).
  std::string to_json() const;
};

/// max(profile) / mean(profile); 0 for an empty or all-zero profile.
double peak_to_average(const std::vector<double>& profile);

}  // namespace tdp::fleet
