#include "fleet/price_fanout.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tdp::fleet {

PriceFanout::PriceFanout(PriceChannel& channel, std::size_t groups)
    : channel_(&channel) {
  TDP_REQUIRE(groups >= 1, "need at least one group");
  subscribers_.reserve(groups);
  schedules_.resize(groups, math::Vector(channel.periods(), 0.0));
  for (std::size_t g = 0; g < groups; ++g) {
    subscribers_.push_back(channel_->subscribe());
  }
}

void PriceFanout::sync(std::size_t abs_period) {
  for (std::size_t g = 0; g < subscribers_.size(); ++g) {
    schedules_[g] = channel_->pull(subscribers_[g], abs_period);
  }
}

const math::Vector& PriceFanout::schedule(std::size_t group) const {
  TDP_REQUIRE(group < schedules_.size(), "unknown group");
  return schedules_[group];
}

std::size_t PriceFanout::total_server_fetches() const {
  std::size_t total = 0;
  for (std::size_t id : subscribers_) {
    total += channel_->server_fetches(id);
  }
  return total;
}

void PriceFanout::restore_schedules(
    const std::vector<math::Vector>& schedules) {
  TDP_REQUIRE(schedules.size() == schedules_.size(),
              "restored fan-out has a different group count");
  schedules_ = schedules;
}

SubscriberTelemetry PriceFanout::telemetry(std::size_t group) const {
  TDP_REQUIRE(group < subscribers_.size(), "unknown group");
  return channel_->telemetry(subscribers_[group]);
}

SubscriberTelemetry PriceFanout::total_telemetry() const {
  SubscriberTelemetry total;
  for (std::size_t id : subscribers_) {
    const SubscriberTelemetry t = channel_->telemetry(id);
    total.fetches += t.fetches;
    total.cache_hits += t.cache_hits;
    total.dropped_attempts += t.dropped_attempts;
    total.retries += t.retries;
    total.stale_periods += t.stale_periods;
    total.fallback_periods += t.fallback_periods;
    total.skewed_periods += t.skewed_periods;
    total.recoveries += t.recoveries;
    total.missed_streak = std::max(total.missed_streak, t.missed_streak);
  }
  return total;
}

}  // namespace tdp::fleet
