#include "fleet/fleet_driver.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <optional>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "core/paper_data.hpp"
#include "math/piecewise_linear.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace tdp::fleet {
namespace {

/// The fleet's registry instruments. Phase timers are nanosecond counters
/// (always on: FleetMetrics' phase seconds are views over their per-run
/// deltas); the robustness counters here cover the driver's own fault
/// domains, while channel.* / pricer.* are bumped by those components.
struct FleetCounters {
  obs::Counter& publish_ns =
      obs::Registry::global().counter("fleet.phase.publish_ns");
  obs::Counter& table_ns =
      obs::Registry::global().counter("fleet.phase.table_ns");
  obs::Counter& simulate_ns =
      obs::Registry::global().counter("fleet.phase.simulate_ns");
  obs::Counter& aggregate_ns =
      obs::Registry::global().counter("fleet.phase.aggregate_ns");
  obs::Counter& pricer_ns =
      obs::Registry::global().counter("fleet.phase.pricer_ns");
  obs::Counter& periods =
      obs::Registry::global().counter("fleet.periods_total");
  obs::Counter& stripes_lost =
      obs::Registry::global().counter("fleet.shard_stripes_lost_total");
  obs::Counter& measurement_gaps =
      obs::Registry::global().counter("fleet.measurement_gaps_total");
  obs::Counter& measurement_repairs =
      obs::Registry::global().counter("fleet.measurement_repairs_total");
  obs::Counter& mech_publishes =
      obs::Registry::global().counter("mech.publishes_total");
  obs::Counter& mech_settles =
      obs::Registry::global().counter("mech.settles_total");
};

FleetCounters& fleet_counters() {
  static FleetCounters counters;
  return counters;
}

/// PricerHealth -> the incident engine's own health ladder (same rungs;
/// the engine sits below the pricing layers and keeps its own enum).
obs::incident::Health map_health(PricerHealth health) {
  switch (health) {
    case PricerHealth::kHealthy:
      return obs::incident::Health::kHealthy;
    case PricerHealth::kDegraded:
      return obs::incident::Health::kDegraded;
    case PricerHealth::kFallback:
      return obs::incident::Health::kFallback;
  }
  return obs::incident::Health::kHealthy;
}

/// Canonical slice count: explicit config wins, else one slice per shard
/// (the pre-slice layout); always clamped to [1, users].
std::size_t effective_slices(const FleetDriverConfig& config,
                             std::uint64_t users) {
  const std::size_t requested =
      config.slices != 0 ? config.slices
                         : std::max<std::size_t>(config.shards, 1);
  return std::min<std::size_t>(std::max<std::size_t>(requested, 1),
                               static_cast<std::size_t>(users));
}

}  // namespace

DynamicModel baseline_fluid_model(const Population& population) {
  const std::size_t n = population.periods();
  DemandProfile arrivals = paper::make_profile(
      n == 48 ? paper::table7_mix_48() : paper::table8_mix_12(),
      paper::kStaticNormalizationReward, LagNormalization::kContinuous);
  const std::vector<double> demand48 = paper::table5_demand_48();
  const double mean48 =
      std::accumulate(demand48.begin(), demand48.end(), 0.0) /
      static_cast<double>(demand48.size());
  const std::vector<double>& expected = population.expected_demand_units();
  const double mean =
      std::accumulate(expected.begin(), expected.end(), 0.0) /
      static_cast<double>(expected.size());
  const double capacity =
      paper::kDynamicCapacityUnits * (mean / mean48);
  return DynamicModel(
      std::move(arrivals), capacity,
      math::PiecewiseLinearCost::hinge(paper::kDynamicCostSlope, 0.0));
}

FleetDriver::FleetDriver(FleetDriverConfig config)
    : config_(std::move(config)),
      population_(config_.population),
      injector_(config_.fault),
      channel_(config_.population.periods),
      fanout_(channel_, paper::kPatienceIndices.size()),
      guard_(population_.expected_demand_units(),
             config_.measurement_guard),
      aggregator_(effective_slices(config_, population_.users()),
                  population_.periods()),
      threads_(config_.threads == 0 ? default_thread_count()
                                    : config_.threads) {
  channel_.set_resilience(config_.resilience);
  if (injector_.enabled()) channel_.set_fault_injector(&injector_);

  // Any offline solve happens here (inside the mechanism's constructor).
  // When the fault plan can fire, the guard defaults to the armed preset; a
  // clean driver keeps the behavior-preserving default guard.
  const PricerGuardConfig guard = config_.pricer_guard.value_or(
      injector_.enabled() ? PricerGuardConfig::protective()
                          : PricerGuardConfig{});
  mechanism_ = mech::make_mechanism(config_.mechanism,
                                    baseline_fluid_model(population_),
                                    config_.offline_options, guard);

  // Shards group whole slices into contiguous near-equal runs; the slice
  // layout (and with it every reduction order) depends on users and slice
  // count only, never on the shard grouping.
  const std::size_t slices = aggregator_.stripes();
  const std::size_t shard_count =
      std::min<std::size_t>(std::max<std::size_t>(config_.shards, 1), slices);
  const std::uint64_t users = population_.users();
  // Built on the pool so each shard's arena pages are first-touched by a
  // worker (NUMA locality with TDP_PIN_THREADS; also parallelizes the
  // per-user trait derivation). Which worker builds which shard does not
  // matter for determinism: every per-user value is a pure function of
  // (seed, user id).
  if (config_.incident.enabled) {
    incident_ = std::make_unique<obs::incident::IncidentEngine>(
        config_.incident);
  }

  shards_.resize(shard_count);
  parallel_for(
      shard_count,
      [&](std::size_t s) {
        const std::size_t begin = slices * s / shard_count;
        const std::size_t end = slices * (s + 1) / shard_count;
        shards_[s] = std::make_unique<Shard>(population_, begin, end, slices);
      },
      threads_);
  TDP_LOG_INFO << "fleet: " << users << " users over " << slices
               << " slices in " << shard_count << " shards, " << threads_
               << " threads, " << population_.periods() << " periods, "
               << mechanism_->name() << " mechanism";
}

const OnlinePricer& FleetDriver::pricer() const {
  const OnlinePricer* pricer = mechanism_->online_pricer();
  TDP_REQUIRE(pricer != nullptr,
              "pricer() needs the tube_online mechanism; use mechanism()");
  return *pricer;
}

FleetDriver::Observation FleetDriver::observe(
    std::size_t period, std::uint64_t abs_period, double calibration,
    const PeriodStats& merged) const {
  Observation obs;
  if (!injector_.enabled()) {
    // Fault-free fast path: the merged aggregate, bit-identical to the
    // pre-fault driver.
    obs.sample = merged.offered_work * calibration;
    return obs;
  }

  // Slices are measurement fault domains: a lost slice's stripe never
  // reaches telemetry. Surviving stripes fold in the same ascending slice
  // order as StripedAggregator::merged, so a no-loss period reproduces the
  // merged value bitwise — and fault draws depend on the slice id, never on
  // the shard grouping, so a chaos run survives a reshard bit-for-bit.
  PeriodStats survived;
  for (std::size_t s = 0; s < aggregator_.stripes(); ++s) {
    if (injector_.measurement_fault(s, abs_period) ==
        FaultInjector::MeasurementFault::kLost) {
      ++obs.lost_stripes;
      continue;
    }
    survived += aggregator_.stripe(s, period);
  }
  const double value = survived.offered_work * calibration;

  // The aggregate stream is its own fault domain on top of shard loss.
  const FaultInjector::MeasurementFault fault = injector_.measurement_fault(
      FaultInjector::kAggregateEntity, abs_period);
  if (fault == FaultInjector::MeasurementFault::kLost) {
    return obs;  // sample never arrives
  }
  obs.sample = injector_.corrupt(fault, value);
  return obs;
}

FleetMetrics FleetDriver::run_day() {
  TDP_REQUIRE(!ran_, "FleetDriver instances are single-shot");
  ran_ = true;
  TDP_OBS_SPAN("fleet.run_day");

  const std::size_t n = population_.periods();
  const std::size_t classes = population_.patience_classes();
  const std::size_t total_days = config_.warmup_days + 1;
  const double calibration = population_.unit_calibration();

  FleetMetrics metrics;
  metrics.users = population_.users();
  metrics.periods = n;
  metrics.shards = shards_.size();
  metrics.threads = threads_;
  metrics.days = total_days;
  metrics.price_groups = fanout_.groups();
  metrics.offered_units.assign(n, 0.0);
  metrics.realized_units.assign(n, 0.0);

  // FleetMetrics' timing and robustness fields are per-run views over the
  // process-wide registry: capture each counter's baseline now, read the
  // deltas after the loop. Safe because a driver is single-shot and nothing
  // else exercises this channel/pricer while run_day runs.
  FleetCounters& fc = fleet_counters();
  obs::Registry& reg = obs::Registry::global();
  const obs::CounterDelta d_publish(fc.publish_ns);
  const obs::CounterDelta d_table(fc.table_ns);
  const obs::CounterDelta d_simulate(fc.simulate_ns);
  const obs::CounterDelta d_aggregate(fc.aggregate_ns);
  const obs::CounterDelta d_pricer(fc.pricer_ns);
  const obs::CounterDelta d_stripes(fc.stripes_lost);
  const obs::CounterDelta d_gaps(fc.measurement_gaps);
  const obs::CounterDelta d_repairs(fc.measurement_repairs);
  const obs::CounterDelta d_fetches(reg.counter("channel.fetches_total"));
  const obs::CounterDelta d_drops(
      reg.counter("channel.dropped_attempts_total"));
  const obs::CounterDelta d_retries(reg.counter("channel.retries_total"));
  const obs::CounterDelta d_stale(reg.counter("channel.stale_periods_total"));
  const obs::CounterDelta d_chan_fallback(
      reg.counter("channel.fallback_periods_total"));
  const obs::CounterDelta d_skewed(
      reg.counter("channel.skewed_periods_total"));
  const obs::CounterDelta d_chan_recoveries(
      reg.counter("channel.recoveries_total"));
  const obs::CounterDelta d_solve_failures(
      reg.counter("pricer.solve_failures_total"));
  const obs::CounterDelta d_clamps(
      reg.counter("pricer.clamped_steps_total"));
  const obs::CounterDelta d_skipped(
      reg.counter("pricer.skipped_updates_total"));
  const obs::CounterDelta d_transitions(
      reg.counter("pricer.health_transitions_total"));
  const obs::CounterDelta d_degraded(
      reg.counter("pricer.degraded_observations_total"));
  const obs::CounterDelta d_fallback_obs(
      reg.counter("pricer.fallback_observations_total"));
  const obs::CounterDelta d_recoveries(
      reg.counter("pricer.recoveries_total"));

  std::uint64_t all_day_sessions = 0;
  const auto start = std::chrono::steady_clock::now();
  // Phase timing: `mark` rolls forward at each phase boundary; each lap
  // charges the elapsed nanoseconds to that phase's registry counter and
  // closes the phase's trace span (pure observation, no effect on any
  // simulated value).
  auto mark = start;
  std::optional<obs::Span> phase_span;
  const auto begin_phase = [&phase_span](std::string_view name) {
    phase_span.emplace(name);
  };
  const auto lap = [&mark, &phase_span](obs::Counter& sink) {
    const auto t = std::chrono::steady_clock::now();
    sink.add_always(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t - mark)
            .count()));
    mark = t;
    phase_span.reset();
  };

  // Per-day settlement accumulators (every day, warmup included: budgeted
  // mechanisms adapt their splits across warmup days too).
  std::vector<double> day_offered(n, 0.0);
  std::vector<double> day_realized(n, 0.0);
  double day_reward_paid = 0.0;

  for (std::size_t day = 0; day < total_days; ++day) {
    const bool measured = day + 1 == total_days;
    day_offered.assign(n, 0.0);
    day_realized.assign(n, 0.0);
    day_reward_paid = 0.0;
    SubscriberTelemetry day_chan_before;
    if (incident_ != nullptr) day_chan_before = fanout_.total_telemetry();
    {
      const math::Vector& published = mechanism_->rewards();
      double mean_reward = 0.0;
      double max_reward = 0.0;
      for (std::size_t p = 0; p < n; ++p) {
        mean_reward += published[p];
        max_reward = std::max(max_reward, published[p]);
      }
      mean_reward /= static_cast<double>(n);
      fc.mech_publishes.add(1);
      obs::journal_record("mech.publish", -1, -1, mechanism_->name(),
                          {{"day", static_cast<double>(day)},
                           {"mean_reward", mean_reward},
                           {"max_reward", max_reward}});
    }
    for (std::size_t period = 0; period < n; ++period) {
      std::optional<obs::Span> period_span;
      period_span.emplace("fleet.period");
      fc.periods.add(1);
      const std::uint64_t abs_period =
          static_cast<std::uint64_t>(day) * n + period;
      // Channel-side degradation counters are deterministic channel state
      // (not gated telemetry): their delta across this period's sync is
      // the incident engine's price-channel disturbance signal.
      SubscriberTelemetry chan_before;
      if (incident_ != nullptr) chan_before = fanout_.total_telemetry();
      mark = std::chrono::steady_clock::now();
      // Publish the current schedule and fan it out (one server fetch per
      // group; every user in a group reads the group cache).
      begin_phase("fleet.publish");
      channel_.publish(mechanism_->rewards());
      fanout_.sync(day * n + period);

      std::vector<const math::Vector*> schedules(classes);
      for (std::size_t c = 0; c < classes; ++c) {
        schedules[c] = &fanout_.schedule(c);
      }
      lap(fc.publish_ns);
      begin_phase("fleet.table");
      const DeferralTable table(population_, schedules, period);
      lap(fc.table_ns);

      begin_phase("fleet.simulate");
      parallel_for(
          shards_.size(),
          [&](std::size_t s) {
            TDP_OBS_SPAN("fleet.shard");
            shards_[s]->simulate_period(day, period, table, aggregator_);
          },
          threads_);
      lap(fc.simulate_ns);

      begin_phase("fleet.aggregate");
      const PeriodStats merged = aggregator_.merged(period);
      all_day_sessions += merged.sessions;
      day_offered[period] = merged.offered_work * calibration;
      day_realized[period] = merged.realized_work * calibration;
      day_reward_paid += merged.reward_paid * calibration;
      if (measured) {
        metrics.sessions += merged.sessions;
        metrics.deferred_sessions += merged.deferred_sessions;
        metrics.offered_units[period] = merged.offered_work * calibration;
        metrics.realized_units[period] = merged.realized_work * calibration;
        metrics.reward_paid_units += merged.reward_paid * calibration;
      }
      lap(fc.aggregate_ns);

      bool sig_gap = false;
      bool sig_repaired = false;
      std::size_t sig_lost = 0;
      if (config_.online_pricing) {
        begin_phase("fleet.pricer");
        const Observation obs =
            observe(period, abs_period, calibration, merged);
        sig_lost = obs.lost_stripes;
        if (obs.lost_stripes > 0) {
          fc.stripes_lost.add_always(obs.lost_stripes);
          obs::journal_record("fleet.stripe_lost",
                              static_cast<std::int64_t>(period), -1,
                              "shard measurement stripes lost",
                              {{"stripes",
                                static_cast<double>(obs.lost_stripes)},
                               {"abs_period",
                                static_cast<double>(abs_period)}});
        }
        if (!obs.sample.has_value()) {
          // Total telemetry blackout for the period: the pricer is told
          // explicitly and freezes its schedule.
          sig_gap = true;
          fc.measurement_gaps.add_always(1);
          obs::journal_record("fleet.measurement_gap",
                              static_cast<std::int64_t>(period), -1,
                              "telemetry blackout, schedule frozen",
                              {{"abs_period",
                                static_cast<double>(abs_period)}});
          mechanism_->observe_missed(period);
        } else {
          const MeasurementGuard::Admitted admitted =
              guard_.admit(period, obs.sample);
          if (admitted.degraded) fc.measurement_repairs.add_always(1);
          sig_repaired = admitted.degraded;
          const std::size_t budget =
              injector_.exhaust_solver(abs_period)
                  ? injector_.plan().solver_starved_budget
                  : mechanism_->solver_budget();
          mechanism_->observe_period(
              period, admitted.value,
              admitted.degraded || obs.lost_stripes > 0, budget);
        }
        lap(fc.pricer_ns);
      }

      if (incident_ != nullptr) {
        const SubscriberTelemetry chan_now = fanout_.total_telemetry();
        obs::incident::PeriodSignals sig;
        sig.day = day;
        sig.period = static_cast<std::uint32_t>(period);
        sig.abs_period = abs_period;
        sig.offered_units = day_offered[period];
        sig.realized_units = day_realized[period];
        sig.measurement_gap = sig_gap;
        sig.measurement_repaired = sig_repaired;
        sig.lost_stripes = sig_lost;
        sig.price_groups = fanout_.groups();
        sig.failed_attempts =
            chan_now.dropped_attempts - chan_before.dropped_attempts;
        sig.degraded_groups =
            (chan_now.stale_periods - chan_before.stale_periods) +
            (chan_now.fallback_periods - chan_before.fallback_periods) +
            (chan_now.skewed_periods - chan_before.skewed_periods);
        sig.solver_starved =
            config_.online_pricing && injector_.exhaust_solver(abs_period);
        sig.health = map_health(mechanism_->health());
        sig.storm_blackout = injector_.storm_active(
            FaultInjector::StormDomain::kBlackout, abs_period);
        sig.storm_channel = injector_.storm_active(
            FaultInjector::StormDomain::kChannel, abs_period);
        sig.storm_solver = injector_.storm_active(
            FaultInjector::StormDomain::kSolver, abs_period);
        incident_->observe_period(sig);
      }
    }

    mech::DaySettlement settlement;
    settlement.offered_units = day_offered;
    settlement.realized_units = day_realized;
    settlement.reward_paid_units = day_reward_paid;
    const mech::SettleInfo settle = mechanism_->settle_day(settlement);
    fc.mech_settles.add(1);
    reg.counter(std::string("mech.") + mechanism_->name() + ".days_total")
        .add(1);
    obs::journal_record(
        "mech.settle", -1, -1, mechanism_->name(),
        {{"day", static_cast<double>(day)},
         {"budget_spent", settle.budget_spent},
         {"budget_pool", settle.budget_pool},
         {"schedule_changed", settle.schedule_changed ? 1.0 : 0.0}});
    if (measured) {
      metrics.rebate_budget_spent = settle.budget_spent;
      metrics.rebate_budget_pool = settle.budget_pool;
    }

    if (incident_ != nullptr) {
      const std::uint64_t day_last_abs =
          static_cast<std::uint64_t>(day) * n + (n - 1);
      obs::incident::SettleSignals ssig;
      ssig.day = day;
      ssig.abs_period = day_last_abs;
      ssig.schedule_changed = settle.schedule_changed;
      ssig.books_held = settle.books_held;
      ssig.budget_spent = settle.budget_spent;
      ssig.budget_pool = settle.budget_pool;
      incident_->observe_settle(ssig);

      const SubscriberTelemetry day_chan_now = fanout_.total_telemetry();
      obs::incident::DaySignals dsig;
      dsig.day = day;
      dsig.abs_period = day_last_abs;
      dsig.peak_to_average_tip = peak_to_average(day_offered);
      dsig.peak_to_average_tdp = peak_to_average(day_realized);
      dsig.peak_realized_units =
          *std::max_element(day_realized.begin(), day_realized.end());
      dsig.fallback_periods =
          day_chan_now.fallback_periods - day_chan_before.fallback_periods;
      incident_->observe_day(dsig);
    }
  }

  const auto elapsed = std::chrono::steady_clock::now() - start;
  metrics.wall_seconds =
      std::chrono::duration<double>(elapsed).count();
  metrics.publish_seconds = static_cast<double>(d_publish.delta()) * 1e-9;
  metrics.table_seconds = static_cast<double>(d_table.delta()) * 1e-9;
  metrics.simulate_seconds = static_cast<double>(d_simulate.delta()) * 1e-9;
  metrics.aggregate_seconds = static_cast<double>(d_aggregate.delta()) * 1e-9;
  metrics.pricer_seconds = static_cast<double>(d_pricer.delta()) * 1e-9;
  const double user_periods = static_cast<double>(population_.users()) *
                              static_cast<double>(n) *
                              static_cast<double>(total_days);
  if (metrics.wall_seconds > 0.0) {
    metrics.sessions_per_second =
        static_cast<double>(all_day_sessions) / metrics.wall_seconds;
    metrics.user_periods_per_second = user_periods / metrics.wall_seconds;
  }
  metrics.peak_to_average_tip = peak_to_average(metrics.offered_units);
  metrics.peak_to_average_tdp = peak_to_average(metrics.realized_units);
  metrics.pricer_expected_cost = mechanism_->expected_cost();
  metrics.mechanism = mechanism_->name();

  // Robustness counters: per-run deltas of the channel/pricer/fleet
  // registry counters (the components bump them at the event sites).
  metrics.price_server_fetches = d_fetches.delta();
  metrics.price_pull_drops = d_drops.delta();
  metrics.price_pull_retries = d_retries.delta();
  metrics.price_stale_periods = d_stale.delta();
  metrics.price_fallback_periods = d_chan_fallback.delta();
  metrics.price_skewed_periods = d_skewed.delta();
  metrics.price_recoveries = d_chan_recoveries.delta();
  metrics.shard_stripes_lost = d_stripes.delta();
  metrics.measurement_gaps = d_gaps.delta();
  metrics.measurement_repairs = d_repairs.delta();
  metrics.solver_failures = d_solve_failures.delta();
  metrics.reward_clamps = d_clamps.delta();
  metrics.skipped_updates = d_skipped.delta();
  metrics.health_transitions = d_transitions.delta();
  metrics.degraded_observations = d_degraded.delta();
  metrics.fallback_observations = d_fallback_obs.delta();
  metrics.pricer_recoveries = d_recoveries.delta();
  // The maximum and the final rung are state, not counts: read them from
  // the mechanism directly.
  const PricerHealthStats* health_stats = mechanism_->health_stats();
  metrics.max_recovery_periods =
      health_stats != nullptr ? health_stats->max_recovery_periods : 0;
  metrics.final_health = to_string(mechanism_->health());
  if (incident_ != nullptr) {
    metrics.incident_alerts = incident_->alerts_emitted();
    metrics.incidents_opened = incident_->incidents_opened();
    metrics.incidents_closed = incident_->incidents_closed();
  }
  return metrics;
}

}  // namespace tdp::fleet
