#include "fleet/fleet_driver.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "core/paper_data.hpp"
#include "math/piecewise_linear.hpp"

namespace tdp::fleet {
namespace {

/// The fluid dynamic model whose expected arrivals match the population's:
/// the published mix on the continuous lag grid, at the paper's 48-period
/// load factor (capacity scales with mean demand so 12-period runs see the
/// same congestion regime).
DynamicModel model_for(const Population& population) {
  const std::size_t n = population.periods();
  DemandProfile arrivals = paper::make_profile(
      n == 48 ? paper::table7_mix_48() : paper::table8_mix_12(),
      paper::kStaticNormalizationReward, LagNormalization::kContinuous);
  const std::vector<double> demand48 = paper::table5_demand_48();
  const double mean48 =
      std::accumulate(demand48.begin(), demand48.end(), 0.0) /
      static_cast<double>(demand48.size());
  const std::vector<double>& expected = population.expected_demand_units();
  const double mean =
      std::accumulate(expected.begin(), expected.end(), 0.0) /
      static_cast<double>(expected.size());
  const double capacity =
      paper::kDynamicCapacityUnits * (mean / mean48);
  return DynamicModel(
      std::move(arrivals), capacity,
      math::PiecewiseLinearCost::hinge(paper::kDynamicCostSlope, 0.0));
}

}  // namespace

FleetDriver::FleetDriver(FleetDriverConfig config)
    : config_(std::move(config)),
      population_(config_.population),
      injector_(config_.fault),
      channel_(config_.population.periods),
      fanout_(channel_, paper::kPatienceIndices.size()),
      guard_(population_.expected_demand_units(),
             config_.measurement_guard),
      aggregator_(
          std::min<std::size_t>(
              std::max<std::size_t>(config_.shards, 1),
              static_cast<std::size_t>(population_.users())),
          population_.periods()),
      threads_(config_.threads == 0 ? default_thread_count()
                                    : config_.threads) {
  channel_.set_resilience(config_.resilience);
  if (injector_.enabled()) channel_.set_fault_injector(&injector_);

  // The offline solve happens here (OnlinePricer's constructor). When the
  // fault plan can fire, the guard defaults to the armed preset; a clean
  // driver keeps the behavior-preserving default guard.
  const PricerGuardConfig guard = config_.pricer_guard.value_or(
      injector_.enabled() ? PricerGuardConfig::protective()
                          : PricerGuardConfig{});
  pricer_ = std::make_unique<OnlinePricer>(model_for(population_),
                                           config_.offline_options,
                                           /*speculative=*/false, guard);

  // Contiguous near-equal user ranges; layout depends on users and shard
  // count only.
  const std::size_t shard_count = aggregator_.shards();
  const std::uint64_t users = population_.users();
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::uint64_t begin = users * s / shard_count;
    const std::uint64_t end = users * (s + 1) / shard_count;
    shards_.emplace_back(population_, begin, end);
  }
  TDP_LOG_INFO << "fleet: " << users << " users over " << shard_count
               << " shards, " << threads_ << " threads, "
               << population_.periods() << " periods";
}

FleetDriver::Observation FleetDriver::observe(
    std::size_t period, std::uint64_t abs_period, double calibration,
    const PeriodStats& merged) const {
  Observation obs;
  if (!injector_.enabled()) {
    // Fault-free fast path: the merged aggregate, bit-identical to the
    // pre-fault driver.
    obs.sample = merged.offered_work * calibration;
    return obs;
  }

  // Shards are measurement fault domains: a lost shard's stripe never
  // reaches telemetry. Surviving stripes fold in the same ascending shard
  // order as StripedAggregator::merged, so a no-loss period reproduces the
  // merged value bitwise.
  PeriodStats survived;
  for (std::size_t s = 0; s < aggregator_.shards(); ++s) {
    if (injector_.measurement_fault(s, abs_period) ==
        FaultInjector::MeasurementFault::kLost) {
      ++obs.lost_stripes;
      continue;
    }
    survived += aggregator_.stripe(s, period);
  }
  const double value = survived.offered_work * calibration;

  // The aggregate stream is its own fault domain on top of shard loss.
  const FaultInjector::MeasurementFault fault = injector_.measurement_fault(
      FaultInjector::kAggregateEntity, abs_period);
  if (fault == FaultInjector::MeasurementFault::kLost) {
    return obs;  // sample never arrives
  }
  obs.sample = injector_.corrupt(fault, value);
  return obs;
}

FleetMetrics FleetDriver::run_day() {
  TDP_REQUIRE(!ran_, "FleetDriver instances are single-shot");
  ran_ = true;

  const std::size_t n = population_.periods();
  const std::size_t classes = population_.patience_classes();
  const std::size_t total_days = config_.warmup_days + 1;
  const double calibration = population_.unit_calibration();

  FleetMetrics metrics;
  metrics.users = population_.users();
  metrics.periods = n;
  metrics.shards = shards_.size();
  metrics.threads = threads_;
  metrics.days = total_days;
  metrics.price_groups = fanout_.groups();
  metrics.offered_units.assign(n, 0.0);
  metrics.realized_units.assign(n, 0.0);

  std::uint64_t all_day_sessions = 0;
  const auto start = std::chrono::steady_clock::now();
  // Phase timing: `mark` rolls forward at each phase boundary; the lap sink
  // accumulates across all periods and days (pure observation, no effect on
  // any simulated value).
  auto mark = start;
  const auto lap = [&mark](double& sink) {
    const auto t = std::chrono::steady_clock::now();
    sink += std::chrono::duration<double>(t - mark).count();
    mark = t;
  };

  for (std::size_t day = 0; day < total_days; ++day) {
    const bool measured = day + 1 == total_days;
    for (std::size_t period = 0; period < n; ++period) {
      mark = std::chrono::steady_clock::now();
      // Publish the current schedule and fan it out (one server fetch per
      // group; every user in a group reads the group cache).
      channel_.publish(pricer_->rewards());
      fanout_.sync(day * n + period);

      std::vector<const math::Vector*> schedules(classes);
      for (std::size_t c = 0; c < classes; ++c) {
        schedules[c] = &fanout_.schedule(c);
      }
      lap(metrics.publish_seconds);
      const DeferralTable table(population_, schedules, period);
      lap(metrics.table_seconds);

      parallel_for(
          shards_.size(),
          [&](std::size_t s) {
            aggregator_.record(
                s, period, shards_[s].simulate_period(day, period, table));
          },
          threads_);
      lap(metrics.simulate_seconds);

      const PeriodStats merged = aggregator_.merged(period);
      all_day_sessions += merged.sessions;
      if (measured) {
        metrics.sessions += merged.sessions;
        metrics.deferred_sessions += merged.deferred_sessions;
        metrics.offered_units[period] = merged.offered_work * calibration;
        metrics.realized_units[period] = merged.realized_work * calibration;
        metrics.reward_paid_units += merged.reward_paid * calibration;
      }
      lap(metrics.aggregate_seconds);

      if (config_.online_pricing) {
        const std::uint64_t abs_period =
            static_cast<std::uint64_t>(day) * n + period;
        const Observation obs =
            observe(period, abs_period, calibration, merged);
        metrics.shard_stripes_lost += obs.lost_stripes;
        if (!obs.sample.has_value()) {
          // Total telemetry blackout for the period: the pricer is told
          // explicitly and freezes its schedule.
          ++metrics.measurement_gaps;
          pricer_->observe_missed(period);
        } else {
          const MeasurementGuard::Admitted admitted =
              guard_.admit(period, obs.sample);
          if (admitted.degraded) ++metrics.measurement_repairs;
          const std::size_t budget =
              injector_.exhaust_solver(abs_period)
                  ? injector_.plan().solver_starved_budget
                  : pricer_->guard().solver_max_iterations;
          pricer_->observe_period_ex(
              period, admitted.value,
              admitted.degraded || obs.lost_stripes > 0, budget);
        }
        lap(metrics.pricer_seconds);
      }
    }
  }

  const auto elapsed = std::chrono::steady_clock::now() - start;
  metrics.wall_seconds =
      std::chrono::duration<double>(elapsed).count();
  const double user_periods = static_cast<double>(population_.users()) *
                              static_cast<double>(n) *
                              static_cast<double>(total_days);
  if (metrics.wall_seconds > 0.0) {
    metrics.sessions_per_second =
        static_cast<double>(all_day_sessions) / metrics.wall_seconds;
    metrics.user_periods_per_second = user_periods / metrics.wall_seconds;
  }
  metrics.peak_to_average_tip = peak_to_average(metrics.offered_units);
  metrics.peak_to_average_tdp = peak_to_average(metrics.realized_units);
  metrics.pricer_expected_cost = pricer_->expected_cost();
  metrics.price_server_fetches = fanout_.total_server_fetches();

  const SubscriberTelemetry channel_stats = fanout_.total_telemetry();
  metrics.price_pull_drops = channel_stats.dropped_attempts;
  metrics.price_pull_retries = channel_stats.retries;
  metrics.price_stale_periods = channel_stats.stale_periods;
  metrics.price_fallback_periods = channel_stats.fallback_periods;
  metrics.price_skewed_periods = channel_stats.skewed_periods;
  metrics.price_recoveries = channel_stats.recoveries;
  const PricerHealthStats& health = pricer_->health_stats();
  metrics.solver_failures = health.solve_failures;
  metrics.reward_clamps = health.clamped_steps;
  metrics.skipped_updates = health.skipped_updates;
  metrics.health_transitions = health.transitions;
  metrics.degraded_observations = health.degraded_observations;
  metrics.fallback_observations = health.fallback_observations;
  metrics.pricer_recoveries = health.recoveries;
  metrics.max_recovery_periods = health.max_recovery_periods;
  metrics.final_health = to_string(pricer_->health());
  return metrics;
}

}  // namespace tdp::fleet
