#include "fleet/aggregator.hpp"

#include "common/error.hpp"

namespace tdp::fleet {

StripedAggregator::StripedAggregator(std::size_t stripes, std::size_t periods)
    : stripes_(stripes), periods_(periods) {
  TDP_REQUIRE(stripes >= 1, "need at least one stripe");
  TDP_REQUIRE(periods >= 1, "need at least one period");
  stripes_data_.resize(stripes * periods);
}

void StripedAggregator::record(std::size_t slice, std::size_t period,
                               const PeriodStats& stats) {
  TDP_REQUIRE(slice < stripes_ && period < periods_,
              "stripe index out of range");
  stripes_data_[slice * periods_ + period] = stats;
}

PeriodStats StripedAggregator::merged(std::size_t period) const {
  TDP_REQUIRE(period < periods_, "period out of range");
  PeriodStats total;
  for (std::size_t slice = 0; slice < stripes_; ++slice) {
    total += stripes_data_[slice * periods_ + period];
  }
  return total;
}

const PeriodStats& StripedAggregator::stripe(std::size_t slice,
                                             std::size_t period) const {
  TDP_REQUIRE(slice < stripes_ && period < periods_,
              "stripe index out of range");
  return stripes_data_[slice * periods_ + period];
}

void StripedAggregator::clear() {
  for (PeriodStats& stats : stripes_data_) stats = PeriodStats{};
}

}  // namespace tdp::fleet
