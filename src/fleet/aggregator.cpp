#include "fleet/aggregator.hpp"

#include "common/error.hpp"

namespace tdp::fleet {

StripedAggregator::StripedAggregator(std::size_t shards, std::size_t periods)
    : shards_(shards), periods_(periods) {
  TDP_REQUIRE(shards >= 1, "need at least one shard");
  TDP_REQUIRE(periods >= 1, "need at least one period");
  stripes_.resize(shards * periods);
}

void StripedAggregator::record(std::size_t shard, std::size_t period,
                               const PeriodStats& stats) {
  TDP_REQUIRE(shard < shards_ && period < periods_,
              "stripe index out of range");
  stripes_[shard * periods_ + period] = stats;
}

PeriodStats StripedAggregator::merged(std::size_t period) const {
  TDP_REQUIRE(period < periods_, "period out of range");
  PeriodStats total;
  for (std::size_t shard = 0; shard < shards_; ++shard) {
    total += stripes_[shard * periods_ + period];
  }
  return total;
}

const PeriodStats& StripedAggregator::stripe(std::size_t shard,
                                             std::size_t period) const {
  TDP_REQUIRE(shard < shards_ && period < periods_,
              "stripe index out of range");
  return stripes_[shard * periods_ + period];
}

void StripedAggregator::clear() {
  for (PeriodStats& stats : stripes_) stats = PeriodStats{};
}

}  // namespace tdp::fleet
