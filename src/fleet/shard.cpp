#include "fleet/shard.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/deferral_kernel.hpp"
#include "fleet/aggregator.hpp"

namespace tdp::fleet {

DeferralTable::DeferralTable(
    const Population& population,
    const std::vector<const math::Vector*>& schedule_by_class,
    std::size_t period,
    const std::vector<UniformLagWeightTable>* lag_override)
    : periods_(population.periods()) {
  const std::size_t n = periods_;
  const std::size_t classes = population.patience_classes();
  TDP_REQUIRE(schedule_by_class.size() == classes,
              "need one reward schedule per patience class");
  TDP_REQUIRE(period < n, "period out of range");
  TDP_REQUIRE(lag_override == nullptr || lag_override->size() == classes,
              "need one lag-weight table per patience class");

  cumulative_.assign(classes * n, 0.0);
  reward_.assign(classes * n, 0.0);
  for (std::size_t c = 0; c < classes; ++c) {
    const math::Vector& schedule = *schedule_by_class[c];
    TDP_REQUIRE(schedule.size() == n, "schedule size mismatch");
    // Precomputed per-class lag weights — bitwise identical to calling
    // lag_weight() on the class's waiting function (test_kernel_plan.cpp).
    // A drift override swaps in tables built from perturbed patience
    // indices without touching the population's calibrated defaults.
    const UniformLagWeightTable& weights =
        lag_override ? (*lag_override)[c]
                     : population.lag_table(static_cast<std::uint32_t>(c));
    double total = 0.0;
    for (std::size_t lag = 1; lag < n; ++lag) {
      const std::size_t target = (period + lag) % n;
      const double p = weights.weight(schedule[target], lag);
      total += p;
      cumulative_[c * n + lag] = total;
      reward_[c * n + lag] = schedule[target];
    }
    if (total > 1.0) {
      // Rewards above the probabilistic validity bound; renormalize
      // defensively, as the session-level simulator does.
      ++probability_clamps_;
      for (std::size_t lag = 1; lag < n; ++lag) {
        cumulative_[c * n + lag] /= total;
      }
    }
  }
}

PeriodStats& PeriodStats::operator+=(const PeriodStats& other) {
  offered_work += other.offered_work;
  realized_work += other.realized_work;
  deferred_work += other.deferred_work;
  reward_paid += other.reward_paid;
  sessions += other.sessions;
  deferred_sessions += other.deferred_sessions;
  return *this;
}

Shard::Shard(const Population& population, std::size_t begin_slice,
             std::size_t end_slice, std::size_t total_slices)
    : population_(&population),
      begin_slice_(begin_slice),
      end_slice_(end_slice),
      begin_(slice_user_begin(population.users(), total_slices, begin_slice)),
      end_(slice_user_begin(population.users(), total_slices, end_slice)) {
  TDP_REQUIRE(begin_slice_ < end_slice_ && end_slice_ <= total_slices,
              "shard slice range invalid");
  TDP_REQUIRE(begin_ < end_ && end_ <= population.users(),
              "shard user range invalid");
  slice_user_end_.reserve(end_slice_ - begin_slice_);
  for (std::size_t s = begin_slice_; s < end_slice_; ++s) {
    slice_user_end_.push_back(
        slice_user_begin(population.users(), total_slices, s + 1));
  }
  specs_.reserve(end_ - begin_);
  for (std::uint64_t u = begin_; u < end_; ++u) {
    specs_.push_back(population.spec(u));
  }
  const std::size_t slots = (end_slice_ - begin_slice_) * population.periods();
  deferred_ring_.assign(slots, 0.0);
  reward_ring_.assign(slots, 0.0);
}

void Shard::reset() {
  std::fill(deferred_ring_.begin(), deferred_ring_.end(), 0.0);
  std::fill(reward_ring_.begin(), reward_ring_.end(), 0.0);
  ring_head_ = 0;
}

void Shard::set_ring_head(std::size_t head) {
  TDP_REQUIRE(head < population_->periods(), "ring head out of range");
  ring_head_ = head;
}

void Shard::export_slice_rings(std::size_t slice, std::vector<double>& work,
                               std::vector<double>& reward) const {
  TDP_REQUIRE(slice >= begin_slice_ && slice < end_slice_,
              "slice not owned by this shard");
  const std::size_t n = population_->periods();
  const std::size_t base = (slice - begin_slice_) * n;
  work.assign(deferred_ring_.begin() + static_cast<std::ptrdiff_t>(base),
              deferred_ring_.begin() + static_cast<std::ptrdiff_t>(base + n));
  reward.assign(reward_ring_.begin() + static_cast<std::ptrdiff_t>(base),
                reward_ring_.begin() + static_cast<std::ptrdiff_t>(base + n));
}

void Shard::restore_slice_rings(std::size_t slice,
                                const std::vector<double>& work,
                                const std::vector<double>& reward) {
  TDP_REQUIRE(slice >= begin_slice_ && slice < end_slice_,
              "slice not owned by this shard");
  const std::size_t n = population_->periods();
  TDP_REQUIRE(work.size() == n && reward.size() == n,
              "ring size mismatch");
  const std::size_t base = (slice - begin_slice_) * n;
  std::copy(work.begin(), work.end(),
            deferred_ring_.begin() + static_cast<std::ptrdiff_t>(base));
  std::copy(reward.begin(), reward.end(),
            reward_ring_.begin() + static_cast<std::ptrdiff_t>(base));
}

void Shard::simulate_period(std::size_t day, std::size_t period,
                            const DeferralTable& table,
                            StripedAggregator& aggregator) {
  const Population& pop = *population_;
  const std::size_t n = pop.periods();
  TDP_REQUIRE(period < n, "period out of range");
  TDP_REQUIRE(table.periods() == n, "deferral table size mismatch");

  const double b = pop.mean_session_size();
  const std::size_t abs_period = day * n + period;

  std::uint64_t user = begin_;
  for (std::size_t local = 0; local < slice_user_end_.size(); ++local) {
    PeriodStats stats;
    const std::size_t ring_base = local * n;

    // Work deferred into this period arrives at the period start, with the
    // reward promised when it was deferred.
    stats.realized_work += deferred_ring_[ring_base + ring_head_];
    stats.reward_paid += reward_ring_[ring_base + ring_head_];
    deferred_ring_[ring_base + ring_head_] = 0.0;
    reward_ring_[ring_base + ring_head_] = 0.0;

    const std::uint64_t slice_end = slice_user_end_[local];
    for (std::uint64_t u = user; u < slice_end; ++u) {
      const UserSpec& spec = specs_[u - begin_];
      const double rate =
          spec.activity * pop.session_rate(spec.patience_class, period);
      if (rate <= 0.0) continue;
      Rng rng = pop.user_period_rng(u, abs_period);
      const std::uint64_t count = rng.poisson(rate);
      if (count == 0) continue;
      stats.sessions += count;

      const std::uint32_t cls = spec.patience_class;
      const double stay_threshold = table.cumulative(cls, n - 1);
      for (std::uint64_t s = 0; s < count; ++s) {
        const double work = rng.exponential(b);
        stats.offered_work += work;
        const double draw = rng.uniform();
        if (draw >= stay_threshold) {  // common case: the session stays put
          stats.realized_work += work;
          continue;
        }
        // Smallest lag whose cumulative probability exceeds the draw.
        std::size_t lag = 1;
        while (draw >= table.cumulative(cls, lag)) ++lag;
        ++stats.deferred_sessions;
        stats.deferred_work += work;
        const std::size_t slot = ring_base + (ring_head_ + lag) % n;
        deferred_ring_[slot] += work;
        reward_ring_[slot] += table.reward(cls, lag) * work;
      }
    }
    user = slice_end;

    aggregator.record(begin_slice_ + local, period, stats);
  }

  ring_head_ = (ring_head_ + 1) % n;
}

}  // namespace tdp::fleet
