#include "fleet/shard.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "core/deferral_kernel.hpp"
#include "fleet/aggregator.hpp"

namespace tdp::fleet {

DeferralTable::DeferralTable(
    const Population& population,
    const std::vector<const math::Vector*>& schedule_by_class,
    std::size_t period,
    const std::vector<UniformLagWeightTable>* lag_override)
    : periods_(population.periods()) {
  const std::size_t n = periods_;
  const std::size_t classes = population.patience_classes();
  TDP_REQUIRE(schedule_by_class.size() == classes,
              "need one reward schedule per patience class");
  TDP_REQUIRE(period < n, "period out of range");
  TDP_REQUIRE(lag_override == nullptr || lag_override->size() == classes,
              "need one lag-weight table per patience class");

  cumulative_.assign(classes * n, 0.0);
  reward_.assign(classes * n, 0.0);
  for (std::size_t c = 0; c < classes; ++c) {
    const math::Vector& schedule = *schedule_by_class[c];
    TDP_REQUIRE(schedule.size() == n, "schedule size mismatch");
    // Precomputed per-class lag weights — bitwise identical to calling
    // lag_weight() on the class's waiting function (test_kernel_plan.cpp).
    // A drift override swaps in tables built from perturbed patience
    // indices without touching the population's calibrated defaults.
    const UniformLagWeightTable& weights =
        lag_override ? (*lag_override)[c]
                     : population.lag_table(static_cast<std::uint32_t>(c));
    double total = 0.0;
    for (std::size_t lag = 1; lag < n; ++lag) {
      const std::size_t target = (period + lag) % n;
      const double p = weights.weight(schedule[target], lag);
      total += p;
      cumulative_[c * n + lag] = total;
      reward_[c * n + lag] = schedule[target];
    }
    if (total > 1.0) {
      // Rewards above the probabilistic validity bound; renormalize
      // defensively, as the session-level simulator does.
      ++probability_clamps_;
      for (std::size_t lag = 1; lag < n; ++lag) {
        cumulative_[c * n + lag] /= total;
      }
    }
  }
}

PeriodStats& PeriodStats::operator+=(const PeriodStats& other) {
  offered_work += other.offered_work;
  realized_work += other.realized_work;
  deferred_work += other.deferred_work;
  reward_paid += other.reward_paid;
  sessions += other.sessions;
  deferred_sessions += other.deferred_sessions;
  return *this;
}

Shard::Shard(const Population& population, std::size_t begin_slice,
             std::size_t end_slice, std::size_t total_slices)
    : population_(&population),
      begin_slice_(begin_slice),
      end_slice_(end_slice),
      begin_(slice_user_begin(population.users(), total_slices, begin_slice)),
      end_(slice_user_begin(population.users(), total_slices, end_slice)) {
  TDP_REQUIRE(begin_slice_ < end_slice_ && end_slice_ <= total_slices,
              "shard slice range invalid");
  TDP_REQUIRE(begin_ < end_ && end_ <= population.users(),
              "shard user range invalid");
  slice_user_end_.reserve(end_slice_ - begin_slice_);
  for (std::size_t s = begin_slice_; s < end_slice_; ++s) {
    slice_user_end_.push_back(
        slice_user_begin(population.users(), total_slices, s + 1));
  }

  // One arena reservation for every per-user array; the writes below are
  // the first touch of those pages, so constructing the shard on its
  // owning worker places them on that worker's NUMA node.
  const std::uint64_t users = end_ - begin_;
  ring_slots_ = (end_slice_ - begin_slice_) * population.periods();
  arena_.reset(Arena::bytes_for<std::uint32_t>(users) +
               Arena::bytes_for<double>(users) +
               Arena::bytes_for<std::uint64_t>(users) +
               2 * Arena::bytes_for<double>(ring_slots_));
  cls_ = arena_.allocate<std::uint32_t>(users);
  activity_ = arena_.allocate<double>(users);
  user_stream_ = arena_.allocate<std::uint64_t>(users);
  deferred_ring_ = arena_.allocate<double>(ring_slots_);
  reward_ring_ = arena_.allocate<double>(ring_slots_);

  for (std::uint64_t u = begin_; u < end_; ++u) {
    const UserSpec spec = population.spec(u);
    cls_[u - begin_] = spec.patience_class;
    activity_[u - begin_] = spec.activity;
    user_stream_[u - begin_] = population.user_rng(u).state();
  }
  std::fill(deferred_ring_, deferred_ring_ + ring_slots_, 0.0);
  std::fill(reward_ring_, reward_ring_ + ring_slots_, 0.0);
}

void Shard::reset() {
  std::fill(deferred_ring_, deferred_ring_ + ring_slots_, 0.0);
  std::fill(reward_ring_, reward_ring_ + ring_slots_, 0.0);
  ring_head_ = 0;
}

void Shard::set_ring_head(std::size_t head) {
  TDP_REQUIRE(head < population_->periods(), "ring head out of range");
  ring_head_ = head;
}

void Shard::export_slice_rings(std::size_t slice, std::vector<double>& work,
                               std::vector<double>& reward) const {
  TDP_REQUIRE(slice >= begin_slice_ && slice < end_slice_,
              "slice not owned by this shard");
  const std::size_t n = population_->periods();
  const std::size_t base = (slice - begin_slice_) * n;
  work.assign(deferred_ring_ + base, deferred_ring_ + base + n);
  reward.assign(reward_ring_ + base, reward_ring_ + base + n);
}

void Shard::restore_slice_rings(std::size_t slice,
                                const std::vector<double>& work,
                                const std::vector<double>& reward) {
  TDP_REQUIRE(slice >= begin_slice_ && slice < end_slice_,
              "slice not owned by this shard");
  const std::size_t n = population_->periods();
  TDP_REQUIRE(work.size() == n && reward.size() == n,
              "ring size mismatch");
  const std::size_t base = (slice - begin_slice_) * n;
  std::copy(work.begin(), work.end(), deferred_ring_ + base);
  std::copy(reward.begin(), reward.end(), reward_ring_ + base);
}

void Shard::simulate_period(std::size_t day, std::size_t period,
                            const DeferralTable& table,
                            StripedAggregator& aggregator) {
  const Population& pop = *population_;
  const std::size_t n = pop.periods();
  TDP_REQUIRE(period < n, "period out of range");
  TDP_REQUIRE(table.periods() == n, "deferral table size mismatch");

  const double b = pop.mean_session_size();
  const std::size_t abs_period = day * n + period;

  // Per-(class, period) precompute. `screen[c]` is a count==0 screen
  // for the batched first draw: a class-c user's Poisson mean is
  // activity * rate_c with activity in [0.5, 1.5], so
  // mean <= 1.5 * rate_c * (1 + eps) < 1.6 * rate_c and therefore
  // exp(-1.6 * rate_c) < exp(-mean) = Knuth's termination limit by a
  // relative margin >= ~0.099 * rate_c — far above the few-ulp error of
  // any faithful libm exp once rate_c >= 1e-12. A first uniform at or
  // below the screen thus proves product <= limit: the count is 0 and no
  // further draws happen, bitwise matching the scalar path without
  // computing the user's own exp(-mean) (~90% of user-periods for the
  // paper's mixes). Ineligible classes (tiny rate: margin argument void;
  // rate_c >= 19: some users could cross Poisson's mean>=30 normal-approx
  // branch) get sentinel -1.0, unreachable for a uniform in [0, 1).
  // Users surviving the class screen get a per-user second chance below:
  // exp(-x) >= 1 - x with gap x^2/2, so u1 <= (1 - mean)*(1 - 1e-9) also
  // proves count == 0 (the 1e-9 haircut dwarfs every rounding term while
  // staying under the Taylor gap whenever the bound is positive); only
  // first uniforms above BOTH bounds — essentially the sessions that
  // really happen — pay for an exp.
  const std::size_t classes = pop.patience_classes();
  constexpr std::size_t kMaxClasses = 32;
  TDP_REQUIRE(classes <= kMaxClasses, "patience class count above cap");
  std::array<double, kMaxClasses> rate_c;
  std::array<double, kMaxClasses> screen;
  std::array<double, kMaxClasses> stay_threshold;
  for (std::size_t c = 0; c < classes; ++c) {
    const double rc = pop.session_rate(static_cast<std::uint32_t>(c), period);
    rate_c[c] = rc;
    // Screen for the batched kernel: skip a user iff u1 <= screen[cls].
    // rc <= 0 skips everyone (+inf screen: the scalar path's rate <= 0
    // check can never pass). Otherwise exp(-1.6 * rc) proves count == 0,
    // by the zero_bound argument above; classes outside its validity
    // range screen nobody (-1.0: a uniform is never <= -1).
    if (rc <= 0.0) {
      screen[c] = std::numeric_limits<double>::infinity();
    } else {
      screen[c] = (rc >= 1e-12 && rc < 19.0) ? std::exp(-1.6 * rc) : -1.0;
    }
    stay_threshold[c] =
        table.cumulative(static_cast<std::uint32_t>(c), n - 1);
  }

  // Scratch for the batched stream derivation: the first uniform of each
  // user's (user, abs_period) stream, the stream's state after it, and
  // the screen survivors as a bitmask.
  alignas(64) std::array<double, kBatch> u1;
  alignas(64) std::array<std::uint64_t, kBatch> s2;
  std::array<std::uint64_t, kBatch / 64> active;

  std::uint64_t user = begin_;
  for (std::size_t local = 0; local < slice_user_end_.size(); ++local) {
    PeriodStats stats;
    const std::size_t ring_base = local * n;

    // Work deferred into this period arrives at the period start, with the
    // reward promised when it was deferred.
    stats.realized_work += deferred_ring_[ring_base + ring_head_];
    stats.reward_paid += reward_ring_[ring_base + ring_head_];
    deferred_ring_[ring_base + ring_head_] = 0.0;
    reward_ring_[ring_base + ring_head_] = 0.0;

    const std::uint64_t slice_end = slice_user_end_[local];
    for (std::uint64_t u0 = user; u0 < slice_end; u0 += kBatch) {
      const std::size_t len = static_cast<std::size_t>(
          std::min<std::uint64_t>(kBatch, slice_end - u0));
      const std::size_t base = static_cast<std::size_t>(u0 - begin_);
      simd::fork_uniform_screen_batch(user_stream_ + base, len, abs_period,
                                      cls_ + base, screen.data(), u1.data(),
                                      s2.data(), active.data());

      // Walk only the screen survivors, in ascending user order (set bits
      // ascend within a word, words ascend): the accumulation order — and
      // with it every double — matches the dense walk bitwise.
      for (std::size_t w = 0; w < (len + 63) / 64; ++w) {
        std::uint64_t pending = active[w];
        while (pending != 0) {
          const std::size_t j =
              w * 64 + static_cast<std::size_t>(std::countr_zero(pending));
          pending &= pending - 1;
          const std::uint32_t cls = cls_[base + j];
          const double rate = activity_[base + j] * rate_c[cls];
          if (rate <= 0.0) continue;

          // Continue Knuth's product walk from the batched first draw;
          // computing the limit after it is exact (exp consumes no RNG).
          Rng rng(s2[j]);
          std::uint64_t count;
          if (rate < 30.0) {
            if (u1[j] <= (1.0 - rate) * 0.999999999) continue;  // count == 0
            const double limit = std::exp(-rate);
            count = 0;
            double product = u1[j];
            while (product > limit) {
              ++count;
              product *= rng.uniform();
            }
          } else {
            // Normal-approximation regime: replay the whole draw from the
            // stream state *before* the batched uniform (SplitMix64's state
            // advance is an invertible += of the golden-ratio increment).
            Rng replay(s2[j] - Rng::kGamma);
            count = replay.poisson(rate);
            rng = replay;
          }
          if (count == 0) continue;
          stats.sessions += count;

          const double stay = stay_threshold[cls];
          for (std::uint64_t s = 0; s < count; ++s) {
            const double work = rng.exponential(b);
            stats.offered_work += work;
            const double draw = rng.uniform();
            if (draw >= stay) {  // common case: the session stays put
              stats.realized_work += work;
              continue;
            }
            const std::size_t lag = table.find_lag(cls, draw);
            ++stats.deferred_sessions;
            stats.deferred_work += work;
            const std::size_t slot = ring_base + (ring_head_ + lag) % n;
            deferred_ring_[slot] += work;
            reward_ring_[slot] += table.reward(cls, lag) * work;
          }
        }
      }
    }
    user = slice_end;

    aggregator.record(begin_slice_ + local, period, stats);
  }

  ring_head_ = (ring_head_ + 1) % n;
}

}  // namespace tdp::fleet
