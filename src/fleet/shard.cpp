#include "fleet/shard.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/deferral_kernel.hpp"

namespace tdp::fleet {

DeferralTable::DeferralTable(
    const Population& population,
    const std::vector<const math::Vector*>& schedule_by_class,
    std::size_t period)
    : periods_(population.periods()) {
  const std::size_t n = periods_;
  const std::size_t classes = population.patience_classes();
  TDP_REQUIRE(schedule_by_class.size() == classes,
              "need one reward schedule per patience class");
  TDP_REQUIRE(period < n, "period out of range");

  cumulative_.assign(classes * n, 0.0);
  reward_.assign(classes * n, 0.0);
  for (std::size_t c = 0; c < classes; ++c) {
    const math::Vector& schedule = *schedule_by_class[c];
    TDP_REQUIRE(schedule.size() == n, "schedule size mismatch");
    // Precomputed per-class lag weights — bitwise identical to calling
    // lag_weight() on the class's waiting function (test_kernel_plan.cpp).
    const UniformLagWeightTable& weights =
        population.lag_table(static_cast<std::uint32_t>(c));
    double total = 0.0;
    for (std::size_t lag = 1; lag < n; ++lag) {
      const std::size_t target = (period + lag) % n;
      const double p = weights.weight(schedule[target], lag);
      total += p;
      cumulative_[c * n + lag] = total;
      reward_[c * n + lag] = schedule[target];
    }
    if (total > 1.0) {
      // Rewards above the probabilistic validity bound; renormalize
      // defensively, as the session-level simulator does.
      ++probability_clamps_;
      for (std::size_t lag = 1; lag < n; ++lag) {
        cumulative_[c * n + lag] /= total;
      }
    }
  }
}

PeriodStats& PeriodStats::operator+=(const PeriodStats& other) {
  offered_work += other.offered_work;
  realized_work += other.realized_work;
  deferred_work += other.deferred_work;
  reward_paid += other.reward_paid;
  sessions += other.sessions;
  deferred_sessions += other.deferred_sessions;
  return *this;
}

Shard::Shard(const Population& population, std::uint64_t begin_user,
             std::uint64_t end_user)
    : population_(&population), begin_(begin_user), end_(end_user) {
  TDP_REQUIRE(begin_ < end_ && end_ <= population.users(),
              "shard user range invalid");
  specs_.reserve(end_ - begin_);
  for (std::uint64_t u = begin_; u < end_; ++u) {
    specs_.push_back(population.spec(u));
  }
  deferred_ring_.assign(population.periods(), 0.0);
  reward_ring_.assign(population.periods(), 0.0);
}

void Shard::reset() {
  std::fill(deferred_ring_.begin(), deferred_ring_.end(), 0.0);
  std::fill(reward_ring_.begin(), reward_ring_.end(), 0.0);
  ring_head_ = 0;
}

PeriodStats Shard::simulate_period(std::size_t day, std::size_t period,
                                   const DeferralTable& table) {
  const Population& pop = *population_;
  const std::size_t n = pop.periods();
  TDP_REQUIRE(period < n, "period out of range");
  TDP_REQUIRE(table.periods() == n, "deferral table size mismatch");

  PeriodStats stats;

  // Work deferred into this period arrives at the period start, with the
  // reward promised when it was deferred.
  stats.realized_work += deferred_ring_[ring_head_];
  stats.reward_paid += reward_ring_[ring_head_];
  deferred_ring_[ring_head_] = 0.0;
  reward_ring_[ring_head_] = 0.0;

  const double b = pop.mean_session_size();
  const std::size_t abs_period = day * n + period;

  for (std::uint64_t u = begin_; u < end_; ++u) {
    const UserSpec& spec = specs_[u - begin_];
    const double rate =
        spec.activity * pop.session_rate(spec.patience_class, period);
    if (rate <= 0.0) continue;
    Rng rng = pop.user_period_rng(u, abs_period);
    const std::uint64_t count = rng.poisson(rate);
    if (count == 0) continue;
    stats.sessions += count;

    const std::uint32_t cls = spec.patience_class;
    const double stay_threshold = table.cumulative(cls, n - 1);
    for (std::uint64_t s = 0; s < count; ++s) {
      const double work = rng.exponential(b);
      stats.offered_work += work;
      const double draw = rng.uniform();
      if (draw >= stay_threshold) {  // common case: the session stays put
        stats.realized_work += work;
        continue;
      }
      // Smallest lag whose cumulative probability exceeds the draw.
      std::size_t lag = 1;
      while (draw >= table.cumulative(cls, lag)) ++lag;
      ++stats.deferred_sessions;
      stats.deferred_work += work;
      const std::size_t slot = (ring_head_ + lag) % n;
      deferred_ring_[slot] += work;
      reward_ring_[slot] += table.reward(cls, lag) * work;
    }
  }

  ring_head_ = (ring_head_ + 1) % n;
  return stats;
}

}  // namespace tdp::fleet
