#include "fleet/population.hpp"

#include "common/error.hpp"
#include "core/paper_data.hpp"

namespace tdp::fleet {
namespace {

/// Stream index reserved for a user's static trait draws; period streams use
/// the period index, which is always far below this.
constexpr std::uint64_t kSpecStream = 0xF1EE7000DEADBEEFull;

std::vector<paper::MixRow> mix_for(std::size_t periods) {
  if (periods == 48) return paper::table7_mix_48();
  if (periods == 12) return paper::table8_mix_12();
  throw PreconditionError(
      "fleet population needs 48 or 12 periods (the paper's published "
      "demand mixes)");
}

}  // namespace

Population::Population(PopulationConfig config)
    : config_(config), root_(config.seed) {
  TDP_REQUIRE(config_.users > 0, "population needs at least one user");
  TDP_REQUIRE(config_.sessions_per_day > 0.0,
              "sessions per day must be positive");

  const std::vector<paper::MixRow> mix = mix_for(config_.periods);
  const std::size_t n = config_.periods;
  const std::size_t classes = paper::kPatienceIndices.size();

  // Class day totals and shares from the published mix.
  std::vector<double> class_total(classes, 0.0);
  double day_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < classes; ++c) {
      class_total[c] += mix[i][c];
      day_total += mix[i][c];
    }
  }
  TDP_REQUIRE(day_total > 0.0, "published mix has no demand");

  class_share_.resize(classes);
  class_cdf_.resize(classes);
  double cumulative = 0.0;
  for (std::size_t c = 0; c < classes; ++c) {
    class_share_[c] = class_total[c] / day_total;
    cumulative += class_share_[c];
    class_cdf_[c] = cumulative;
  }
  class_cdf_.back() = 1.0;  // guard against rounding in the last bucket

  // Per-class diurnal session rates: a class-c user's day has
  // sessions_per_day expected sessions, distributed over periods like the
  // class's share of the published profile.
  session_rate_.assign(classes * n, 0.0);
  for (std::size_t c = 0; c < classes; ++c) {
    if (class_total[c] <= 0.0) continue;
    for (std::size_t i = 0; i < n; ++i) {
      session_rate_[c * n + i] =
          config_.sessions_per_day * mix[i][c] / class_total[c];
    }
  }

  // Waiting functions on the continuous lag grid (the dynamic model's
  // convention) normalized at the paper's maximum rational reward.
  waiting_.reserve(classes);
  lag_tables_.reserve(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    waiting_.push_back(std::make_shared<PowerLawWaitingFunction>(
        paper::kPatienceIndices[c], n, paper::kStaticNormalizationReward,
        1.0, LagNormalization::kContinuous));
    lag_tables_.emplace_back(waiting_.back(), n);
  }

  // Calibration: expected aggregate work per period in user units is
  // users * sessions_per_day * b * demand(i) / day_total, so this factor
  // maps aggregate user work onto the paper's demand units exactly.
  unit_calibration_ =
      day_total / (static_cast<double>(config_.users) *
                   config_.sessions_per_day * mean_session_size_);

  expected_units_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < classes; ++c) {
      expected_units_[i] += mix[i][c];
    }
  }
}

UserSpec Population::spec(std::uint64_t user) const {
  Rng rng = root_.fork_stream(user).fork_stream(kSpecStream);
  UserSpec spec;
  const double draw = rng.uniform();
  std::uint32_t cls = 0;
  while (cls + 1 < class_cdf_.size() && draw >= class_cdf_[cls]) ++cls;
  spec.patience_class = cls;
  spec.activity = 0.5 + rng.uniform();
  return spec;
}

Rng Population::user_period_rng(std::uint64_t user,
                                std::size_t period) const {
  return root_.fork_stream(user).fork_stream(period);
}

double Population::patience_index(std::uint32_t cls) const {
  TDP_REQUIRE(cls < waiting_.size(), "class out of range");
  return paper::kPatienceIndices[cls];
}

std::vector<UniformLagWeightTable> Population::scaled_lag_tables(
    const std::vector<double>& beta_scale) const {
  const std::size_t classes = waiting_.size();
  const std::size_t n = config_.periods;
  TDP_REQUIRE(beta_scale.size() == classes,
              "need one beta scale per patience class");
  std::vector<UniformLagWeightTable> tables;
  tables.reserve(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    TDP_REQUIRE(beta_scale[c] > 0.0, "beta scales must be positive");
    // Same construction path as the calibrated defaults, so a scale of 1.0
    // reproduces lag_table(c) bitwise.
    const auto drifted = std::make_shared<PowerLawWaitingFunction>(
        paper::kPatienceIndices[c] * beta_scale[c], n,
        paper::kStaticNormalizationReward, 1.0,
        LagNormalization::kContinuous);
    tables.emplace_back(drifted, n);
  }
  return tables;
}

double Population::session_rate(std::uint32_t cls, std::size_t period) const {
  TDP_REQUIRE(cls < waiting_.size() && period < config_.periods,
              "class or period out of range");
  return session_rate_[cls * config_.periods + period];
}

}  // namespace tdp::fleet
