// Striped per-period usage accumulators with a deterministic merge.
//
// During a period each canonical *slice* gets its own stripe — the shard
// that owns the slice writes it, so there is no sharing, no atomics, and no
// false sharing across the parallel section. The merge then folds stripes
// in ascending slice order, so the floating-point summation order is a
// function of the (fixed) slice layout alone — never of shard grouping,
// thread count, or scheduling: fleet totals are bit-identical for any
// number of worker threads *and any shard count that groups whole slices*,
// which is what lets a checkpoint restore onto a different shard/thread
// configuration without moving a single bit of the aggregates.
//
// (The slice *layout* is part of the configuration: changing the slice
// count regroups the sums and may move totals by rounding noise, just like
// re-chunking any floating-point reduction. Drivers therefore fix the
// layout independently of both the shard and the thread count, and every
// checkpoint records it.)
#pragma once

#include <cstddef>
#include <vector>

#include "fleet/shard.hpp"

namespace tdp::fleet {

class StripedAggregator {
 public:
  StripedAggregator(std::size_t stripes, std::size_t periods);

  /// Number of canonical slices (one stripe per slice per period).
  std::size_t stripes() const { return stripes_; }
  /// Legacy name from the shard-striped era; reads as stripes().
  std::size_t shards() const { return stripes_; }
  std::size_t periods() const { return periods_; }

  /// Record slice `slice`'s totals for `period`. Each slice is written only
  /// by its owning shard, so concurrent calls for distinct slices are
  /// race-free.
  void record(std::size_t slice, std::size_t period, const PeriodStats& stats);

  /// Fleet totals for one period: stripes folded in ascending slice order.
  PeriodStats merged(std::size_t period) const;

  /// One slice's recorded stripe (read-only). The fault-injecting drivers
  /// fold surviving stripes themselves — in the same ascending slice order
  /// — when slices act as measurement fault domains.
  const PeriodStats& stripe(std::size_t slice, std::size_t period) const;

  /// Reset all stripes to zero (start of a new day).
  void clear();

 private:
  std::size_t stripes_;
  std::size_t periods_;
  std::vector<PeriodStats> stripes_data_;  ///< [slice * periods + period]
};

}  // namespace tdp::fleet
