// Striped per-period usage accumulators with a deterministic merge.
//
// During a period each shard writes its totals into its own stripe — no
// sharing, no atomics, no false sharing across the parallel section. The
// merge then folds stripes in ascending shard order, so the floating-point
// summation order is a function of the (fixed) shard layout alone, never of
// thread count or scheduling: fleet totals are bit-identical for any number
// of worker threads, matching the repo's batch-engine determinism contract.
//
// (Shard *layout* is part of the configuration: changing the shard count
// regroups the sums and may move totals by rounding noise, just like
// re-chunking any floating-point reduction. The driver therefore fixes the
// layout independently of the thread count.)
#pragma once

#include <cstddef>
#include <vector>

#include "fleet/shard.hpp"

namespace tdp::fleet {

class StripedAggregator {
 public:
  StripedAggregator(std::size_t shards, std::size_t periods);

  std::size_t shards() const { return shards_; }
  std::size_t periods() const { return periods_; }

  /// Record shard `shard`'s totals for `period`. Each shard writes only its
  /// own slot, so concurrent calls for distinct shards are race-free.
  void record(std::size_t shard, std::size_t period, const PeriodStats& stats);

  /// Fleet totals for one period: stripes folded in ascending shard order.
  PeriodStats merged(std::size_t period) const;

  /// One shard's recorded stripe (read-only). The fault-injecting driver
  /// folds surviving stripes itself — in the same ascending shard order —
  /// when shards act as measurement fault domains.
  const PeriodStats& stripe(std::size_t shard, std::size_t period) const;

  /// Reset all stripes to zero (start of a new day).
  void clear();

 private:
  std::size_t shards_;
  std::size_t periods_;
  std::vector<PeriodStats> stripes_;  ///< [shard * periods + period]
};

}  // namespace tdp::fleet
