#include "common/csv.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace tdp {

std::size_t CsvTable::column_count() const {
  if (!header.empty()) return header.size();
  return rows.empty() ? 0 : rows.front().size();
}

double CsvTable::number(std::size_t row, std::size_t column) const {
  const std::string& text = cell(row, column);
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  TDP_REQUIRE(end != text.c_str() && *end == '\0',
              "cell is not a number: '" + text + "'");
  return value;
}

const std::string& CsvTable::cell(std::size_t row, std::size_t column) const {
  TDP_REQUIRE(row < rows.size(), "row out of range");
  TDP_REQUIRE(column < rows[row].size(), "column out of range");
  return rows[row][column];
}

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (header[c] == name) return c;
  }
  throw PreconditionError("no CSV column named '" + name + "'");
}

namespace {

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, ',')) {
    // Trim surrounding whitespace.
    const auto first = cell.find_first_not_of(" \t\r");
    const auto last = cell.find_last_not_of(" \t\r");
    cells.push_back(first == std::string::npos
                        ? std::string()
                        : cell.substr(first, last - first + 1));
  }
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

}  // namespace

CsvTable parse_csv(const std::string& text, bool has_header) {
  CsvTable table;
  std::istringstream in(text);
  std::string line;
  bool header_pending = has_header;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Skip blanks and comments.
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;

    std::vector<std::string> cells = split_line(line);
    if (header_pending) {
      table.header = std::move(cells);
      width = table.header.size();
      header_pending = false;
      continue;
    }
    if (width == 0) width = cells.size();
    TDP_REQUIRE(cells.size() == width,
                "ragged CSV row: expected " + std::to_string(width) +
                    " cells, got " + std::to_string(cells.size()));
    table.rows.push_back(std::move(cells));
  }
  return table;
}

CsvTable load_csv(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str(), has_header);
}

std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows) {
  std::ostringstream out;
  const auto emit = [&out](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  if (!header.empty()) emit(header);
  for (const auto& row : rows) emit(row);
  return out.str();
}

void save_csv(const std::string& path, const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write CSV file: " + path);
  out << to_csv(header, rows);
  if (!out) throw Error("failed writing CSV file: " + path);
}

}  // namespace tdp
