#include "common/table.hpp"

#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace tdp {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  TDP_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  TDP_REQUIRE(cells.size() == headers_.size(),
              "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) out << "  ";
    }
    out << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace tdp
