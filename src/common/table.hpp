// Console table formatting for the benchmark harness.
//
// Every bench binary regenerates one of the paper's tables or figure series;
// TextTable renders them with aligned columns so the output can be compared
// line-by-line against the paper.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tdp {

/// A simple column-aligned text table.
class TextTable {
 public:
  /// Create a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with fixed precision.
  static std::string num(double value, int precision = 3);

  /// Render with a header rule and 2-space column gaps.
  std::string to_string() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tdp
