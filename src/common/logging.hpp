// Minimal leveled logger.
//
// The library logs through a single global sink (stderr by default; tests
// can install their own with set_log_sink). The sink is mutex-guarded and
// the threshold is atomic, so parallel batch solves and pool workers can
// log concurrently without interleaved or torn lines; each log_message call
// emits exactly one whole line. Only the netsim event loop remains a
// single-threaded component (see DESIGN.md "Threading model").
//
// The logger is itself observable: every emitted line bumps
// log.emitted_total.<level> in the metrics registry, and lines dropped by
// the TDP_LOG_EVERY_POW2 rate limiter bump log.suppressed_total instead of
// vanishing — a flooding-but-throttled warning site is visible in any
// metrics export even when no line of it reaches the sink.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace tdp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Replaceable sink. The previous sink is returned so callers can restore
/// it; an empty function means "write to stderr". The sink runs under the
/// logger's mutex, so it may use non-thread-safe state but must not log.
using LogSink = std::function<void(LogLevel, const std::string&)>;
LogSink set_log_sink(LogSink sink);

/// Emit one log line (used by the TDP_LOG macro; callable directly too).
/// Thread-safe.
void log_message(LogLevel level, const std::string& message);

namespace detail {

/// Power-of-two-cadence gate for rate-limited log sites: true when
/// `occurrence` (1-based) is 1, 2, 4, 8, ... — the cadence every such site
/// in the repo already used by hand. A false return counts the line in
/// log.suppressed_total (always, independent of the metrics switch), so
/// throttled floods stay measurable.
bool rate_limit_pass(std::uint64_t occurrence);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace tdp

#define TDP_LOG(level)                                   \
  if (static_cast<int>(level) < static_cast<int>(::tdp::log_level())) { \
  } else                                                 \
    ::tdp::detail::LogLine(level)

/// Rate-limited logging: emit the line only on the 1st, 2nd, 4th, 8th, ...
/// occurrence (pass the site's own 1-based occurrence counter); suppressed
/// lines are counted in the registry (log.suppressed_total) instead of
/// silently dropped.
#define TDP_LOG_EVERY_POW2(level, occurrence)        \
  if (!::tdp::detail::rate_limit_pass(occurrence)) { \
  } else                                             \
    TDP_LOG(level)

#define TDP_LOG_DEBUG TDP_LOG(::tdp::LogLevel::kDebug)
#define TDP_LOG_INFO TDP_LOG(::tdp::LogLevel::kInfo)
#define TDP_LOG_WARN TDP_LOG(::tdp::LogLevel::kWarn)
#define TDP_LOG_ERROR TDP_LOG(::tdp::LogLevel::kError)
