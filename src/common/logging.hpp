// Minimal leveled logger.
//
// The library logs to stderr through a single global sink; tests and benches
// can raise the threshold to silence it. Not thread-safe by design: the TDP
// models are single-threaded numerical code, and the netsim event loop is
// single-threaded as well.
#pragma once

#include <sstream>
#include <string>

namespace tdp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (used by the TDP_LOG macro; callable directly too).
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace tdp

#define TDP_LOG(level)                                   \
  if (static_cast<int>(level) < static_cast<int>(::tdp::log_level())) { \
  } else                                                 \
    ::tdp::detail::LogLine(level)

#define TDP_LOG_DEBUG TDP_LOG(::tdp::LogLevel::kDebug)
#define TDP_LOG_INFO TDP_LOG(::tdp::LogLevel::kInfo)
#define TDP_LOG_WARN TDP_LOG(::tdp::LogLevel::kWarn)
#define TDP_LOG_ERROR TDP_LOG(::tdp::LogLevel::kError)
