// Minimal leveled logger.
//
// The library logs through a single global sink (stderr by default; tests
// can install their own with set_log_sink). The sink is mutex-guarded and
// the threshold is atomic, so parallel batch solves and pool workers can
// log concurrently without interleaved or torn lines; each log_message call
// emits exactly one whole line. Only the netsim event loop remains a
// single-threaded component (see DESIGN.md "Threading model").
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace tdp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Replaceable sink. The previous sink is returned so callers can restore
/// it; an empty function means "write to stderr". The sink runs under the
/// logger's mutex, so it may use non-thread-safe state but must not log.
using LogSink = std::function<void(LogLevel, const std::string&)>;
LogSink set_log_sink(LogSink sink);

/// Emit one log line (used by the TDP_LOG macro; callable directly too).
/// Thread-safe.
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace tdp

#define TDP_LOG(level)                                   \
  if (static_cast<int>(level) < static_cast<int>(::tdp::log_level())) { \
  } else                                                 \
    ::tdp::detail::LogLine(level)

#define TDP_LOG_DEBUG TDP_LOG(::tdp::LogLevel::kDebug)
#define TDP_LOG_INFO TDP_LOG(::tdp::LogLevel::kInfo)
#define TDP_LOG_WARN TDP_LOG(::tdp::LogLevel::kWarn)
#define TDP_LOG_ERROR TDP_LOG(::tdp::LogLevel::kError)
