#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace tdp {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;
LogSink g_sink;  // guarded by g_sink_mutex; empty = stderr

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogSink set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  LogSink previous = std::move(g_sink);
  g_sink = std::move(sink);
  return previous;
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fprintf(stderr, "[tdp %-5s] %s\n", level_name(level), message.c_str());
}

}  // namespace tdp
