#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

#include "obs/registry.hpp"

namespace tdp {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;
LogSink g_sink;  // guarded by g_sink_mutex; empty = stderr

/// Per-level emission counters plus the rate-limiter's suppression count —
/// the logger's registry view (always on: these back observable behavior,
/// not optional telemetry).
obs::Counter& emitted_counter(LogLevel level) {
  static obs::Counter& debug =
      obs::Registry::global().counter("log.emitted_total.debug");
  static obs::Counter& info =
      obs::Registry::global().counter("log.emitted_total.info");
  static obs::Counter& warn =
      obs::Registry::global().counter("log.emitted_total.warn");
  static obs::Counter& error =
      obs::Registry::global().counter("log.emitted_total.error");
  switch (level) {
    case LogLevel::kDebug:
      return debug;
    case LogLevel::kInfo:
      return info;
    case LogLevel::kWarn:
      return warn;
    default:
      return error;
  }
}

obs::Counter& suppressed_counter() {
  static obs::Counter& counter =
      obs::Registry::global().counter("log.suppressed_total");
  return counter;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogSink set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  LogSink previous = std::move(g_sink);
  g_sink = std::move(sink);
  return previous;
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  emitted_counter(level).add_always(1);
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fprintf(stderr, "[tdp %-5s] %s\n", level_name(level), message.c_str());
}

namespace detail {

bool rate_limit_pass(std::uint64_t occurrence) {
  // Power of two (or the 1st): log. Everything else is suppressed and
  // counted so a throttled flood is still visible in the registry.
  if (occurrence != 0 && (occurrence & (occurrence - 1)) == 0) return true;
  suppressed_counter().add_always(1);
  return false;
}

}  // namespace detail
}  // namespace tdp
