// Versioned, byte-stable binary serialization for checkpoint/restore.
//
// Long-horizon runs must be able to kill a process mid-day and restore it
// bit-identically, which makes the on-disk encoding part of the system's
// determinism contract. The format here is therefore explicit about
// everything a compiler or platform could otherwise choose for us:
//
//   * all integers are little-endian, written byte by byte;
//   * doubles are written as the little-endian bytes of their IEEE-754
//     bit pattern (std::bit_cast to uint64_t) — bitwise round-trip, no
//     textual conversion;
//   * every payload starts with a magic/version header and ends under a
//     CRC-32 so a truncated or bit-flipped file is *detected*, never
//     trusted;
//   * content is framed into tagged sections (tag + byte length) so future
//     versions can add sections old readers skip and old files stay
//     loadable under the documented compatibility policy (DESIGN.md §12).
//
// The Reader is written for hostile input: every read is bounds-checked,
// vector lengths are validated against the bytes actually remaining before
// any allocation, and all failures throw FormatError — a corrupt checkpoint
// must produce a clean error, never UB or an OOM crash (enforced by the
// corruption fuzz tests in tests/test_serialize.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace tdp::ser {

/// Thrown on any structural problem with serialized bytes: bad magic,
/// unsupported version, truncation, CRC mismatch, implausible lengths,
/// non-finite values where finite ones are required.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF) over `size` bytes.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

/// Append-only little-endian encoder. finish() frames the accumulated
/// payload with the magic/version header and trailing CRC.
class Writer {
 public:
  /// @param magic   4-byte format identifier (e.g. "TDPC").
  /// @param version format version written into the header.
  Writer(std::string_view magic, std::uint32_t version);

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void bytes(const std::uint8_t* data, std::size_t size);
  /// Length-prefixed (u32) UTF-8 string.
  void str(std::string_view s);
  /// Length-prefixed (u64 count) vector of doubles.
  void vec_f64(const std::vector<double>& v);
  /// Length-prefixed (u64 count) vector of u64.
  void vec_u64(const std::vector<std::uint64_t>& v);

  /// Open a tagged section; returns a token for end_section. Sections may
  /// not nest (one level of framing keeps corrupt lengths easy to bound).
  std::size_t begin_section(std::uint32_t tag);
  /// Close the section opened by begin_section, patching its byte length.
  void end_section(std::size_t token);

  /// Header + payload + CRC as one buffer. The Writer is spent afterwards.
  std::vector<std::uint8_t> finish();

  /// The accumulated payload alone — no header, no CRC; the Writer is
  /// spent afterwards. A streaming writer encodes each section through its
  /// own Writer, caches the chunks, and frames their concatenation with
  /// frame() — producing bytes identical to one finish() call over the
  /// same sections in the same order.
  std::vector<std::uint8_t> take_payload();

  /// Assemble header + `payload` + CRC exactly as finish() would.
  static std::vector<std::uint8_t> frame(
      std::string_view magic, std::uint32_t version,
      const std::vector<std::uint8_t>& payload);

 private:
  std::vector<std::uint8_t> payload_;
  std::uint8_t magic_[4];
  std::uint32_t version_;
  bool in_section_ = false;
  bool finished_ = false;
};

/// Bounds-checked little-endian decoder over a framed buffer produced by
/// Writer::finish(). The constructor validates magic, version range, total
/// length, and CRC before any field access.
class Reader {
 public:
  /// @param min_version..max_version inclusive supported version range.
  Reader(const std::uint8_t* data, std::size_t size, std::string_view magic,
         std::uint32_t min_version, std::uint32_t max_version);
  Reader(const std::vector<std::uint8_t>& data, std::string_view magic,
         std::uint32_t min_version, std::uint32_t max_version)
      : Reader(data.data(), data.size(), magic, min_version, max_version) {}

  std::uint32_t version() const { return version_; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  bool boolean();
  std::string str();
  /// Vector of doubles; `max_count` bounds the allocation (defaults to the
  /// count the remaining bytes could actually hold, so a corrupt length can
  /// never drive an over-allocation).
  std::vector<double> vec_f64(std::size_t max_count = SIZE_MAX);
  /// As vec_f64 but every element must be finite (FormatError otherwise).
  std::vector<double> vec_f64_finite(std::size_t max_count = SIZE_MAX);
  std::vector<std::uint64_t> vec_u64(std::size_t max_count = SIZE_MAX);

  /// Read the next section header; returns its tag and enters the section.
  /// The section's byte length is validated against the remaining payload.
  std::uint32_t begin_section();
  /// Leave the current section: requires all its bytes were consumed
  /// (strict framing — trailing garbage inside a section is corruption).
  void end_section();
  /// Skip the rest of the current section (forward compatibility).
  void skip_section();

  /// Bytes left in the current section (or whole payload outside one).
  std::size_t remaining() const;
  /// True when the whole payload has been consumed.
  bool at_end() const { return pos_ == payload_end_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t pos_ = 0;
  std::size_t payload_end_ = 0;
  std::size_t section_end_ = 0;
  bool in_section_ = false;
  std::uint32_t version_ = 0;
};

}  // namespace tdp::ser
