// Minimal CSV reading/writing for the CLI tools and data interchange.
//
// Supports the subset the TDP tools need: comma-separated numeric and
// string cells, optional header row, '#' comment lines, and ignored blank
// lines. No quoting/escaping — demand tables are plain numbers.
#pragma once

#include <string>
#include <vector>

namespace tdp {

struct CsvTable {
  std::vector<std::string> header;             ///< empty if no header
  std::vector<std::vector<std::string>> rows;  ///< raw cells

  std::size_t row_count() const { return rows.size(); }
  std::size_t column_count() const;

  /// Cell parsed as double; throws PreconditionError on malformed input.
  double number(std::size_t row, std::size_t column) const;

  /// Raw cell text.
  const std::string& cell(std::size_t row, std::size_t column) const;

  /// Index of a header column by name; throws if absent or no header.
  std::size_t column_index(const std::string& name) const;
};

/// Parse CSV text. If `has_header` the first non-comment line is the
/// header. Ragged rows are rejected.
CsvTable parse_csv(const std::string& text, bool has_header);

/// Load and parse a CSV file; throws Error if unreadable.
CsvTable load_csv(const std::string& path, bool has_header);

/// Serialize rows (and optional header) to CSV text.
std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows);

/// Write CSV text to a file; throws Error on failure.
void save_csv(const std::string& path, const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows);

}  // namespace tdp
