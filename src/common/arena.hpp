// Per-shard bump arena for the fleet's population SoA arrays.
//
// Two properties matter here, neither of which std::vector gives us:
//
//  * **First-touch NUMA placement.** The arena reserves address space but
//    never writes the pages itself; the first write comes from the owning
//    shard's worker thread during construction, so on a multi-socket host
//    the kernel places each shard's pages on the node where its worker
//    runs (a no-op on single-node hosts — the same code path, no special
//    casing). std::vector's value-initialization would touch every page
//    on the constructing thread instead.
//
//  * **Cache-line alignment.** Every allocation is 64-byte aligned so
//    SIMD loads in the session loop never split lines and neighbouring
//    shards never false-share.
//
// Allocations are freed all at once when the arena dies; individual
// deallocation is deliberately unsupported (shard arrays live exactly as
// long as their shard).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>

#include "common/error.hpp"

namespace tdp {

class Arena {
 public:
  static constexpr std::size_t kAlignment = 64;

  Arena() = default;

  /// Reserve `bytes` of address space. The memory is left untouched so the
  /// caller's first write performs the NUMA first-touch.
  explicit Arena(std::size_t bytes) { reset(bytes); }

  Arena(Arena&& other) noexcept
      : base_(std::exchange(other.base_, nullptr)),
        capacity_(std::exchange(other.capacity_, 0)),
        used_(std::exchange(other.used_, 0)) {}

  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) {
      release();
      base_ = std::exchange(other.base_, nullptr);
      capacity_ = std::exchange(other.capacity_, 0);
      used_ = std::exchange(other.used_, 0);
    }
    return *this;
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() { release(); }

  /// Discard all allocations and reserve a fresh block of `bytes`.
  void reset(std::size_t bytes) {
    release();
    if (bytes == 0) return;
    base_ = static_cast<std::byte*>(
        std::aligned_alloc(kAlignment, round_up(bytes)));
    if (base_ == nullptr) throw std::bad_alloc();
    capacity_ = round_up(bytes);
    used_ = 0;
  }

  /// Uninitialized storage for `count` objects of T, 64-byte aligned.
  /// The caller must write every element before reading (and does, from
  /// the owning worker — that write is the first touch).
  template <typename T>
  T* allocate(std::size_t count) {
    static_assert(alignof(T) <= kAlignment, "over-aligned type");
    const std::size_t bytes = round_up(count * sizeof(T));
    TDP_REQUIRE(used_ + bytes <= capacity_, "arena capacity exceeded");
    T* out = reinterpret_cast<T*>(base_ + used_);
    used_ += bytes;
    return out;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }

  /// Bytes needed to hold `count` objects of T within a larger reservation.
  template <typename T>
  static std::size_t bytes_for(std::size_t count) {
    return round_up(count * sizeof(T));
  }

 private:
  static std::size_t round_up(std::size_t bytes) {
    return (bytes + kAlignment - 1) / kAlignment * kAlignment;
  }

  void release() {
    std::free(base_);
    base_ = nullptr;
    capacity_ = 0;
    used_ = 0;
  }

  std::byte* base_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
};

}  // namespace tdp
