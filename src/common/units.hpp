// Units and conventions shared across the TDP library.
//
// The paper (ICDCS'11) works in two implicit units that we make explicit:
//   - money is measured in units of $0.10 ("For illustrative purposes, we use
//     monetary units of $0.10");
//   - demand is measured in units of 10 MBps (the unit of Tables VII-XV).
// With these conventions the static-model capacity cost is f(x) = 3*max(x,0)
// and the headline per-user daily costs ($4.26 TIP / $3.26 TDP) come out in
// dollars once multiplied by kDollarsPerMoneyUnit.
#pragma once

#include <cstddef>

namespace tdp {

/// One money unit equals $0.10.
inline constexpr double kDollarsPerMoneyUnit = 0.10;

/// One demand unit equals 10 MBps (the unit used by the paper's mix tables).
inline constexpr double kMBpsPerDemandUnit = 10.0;

/// A "typical period lasts a half hour" (Section II).
inline constexpr double kSecondsPerPeriod = 1800.0;

/// Number of users behind the bottleneck in the headline simulation
/// ("this is typical of a system with ten users").
inline constexpr std::size_t kPaperUserCount = 10;

/// Convert a money-unit amount to dollars.
constexpr double to_dollars(double money_units) {
  return money_units * kDollarsPerMoneyUnit;
}

/// Convert a demand-unit rate to MBps.
constexpr double to_mbps(double demand_units) {
  return demand_units * kMBpsPerDemandUnit;
}

/// Convert MBps to demand units.
constexpr double from_mbps(double mbps) { return mbps / kMBpsPerDemandUnit; }

/// Volume (MB) carried by a demand-unit rate sustained for one period.
constexpr double demand_units_to_mb_per_period(double demand_units) {
  return to_mbps(demand_units) * kSecondsPerPeriod;
}

}  // namespace tdp
