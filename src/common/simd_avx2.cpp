// AVX2 implementation of the batched SplitMix64 derivation kernel.
// Compiled with -mavx2 (per-source flag in CMakeLists.txt); callers reach
// it only through simd::fork_uniform_batch after the runtime CPUID check.
//
// Each 64-bit lane replays exactly the scalar sequence
//   Rng child = Rng(state[i]).fork_stream(stream);
//   u1[i] = child.uniform();
//   state_out[i] = child.state();
// All operations are integer (exact in any width) except the final
// uint64 -> double conversion, which is exact by construction: the 53-bit
// mantissa value is split into 32-bit halves, each converted exactly via
// the 2^52 magic-number trick, and recombined with one multiply-by-2^32
// and one add whose result is itself exactly representable (< 2^53).
#include "common/simd.hpp"

#if defined(TDP_HAVE_AVX2)

#include <immintrin.h>

#include "common/rng.hpp"

namespace tdp::simd::detail {

namespace {

// Full 64-bit lane-wise multiply (AVX2 has only 32x32->64).
inline __m256i mul64(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b),
                                         _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

inline __m256i xorshift(__m256i z, int shift) {
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, shift));
}

// SplitMix64 finalizer (the body of Rng::next() after the state advance,
// and of fork_stream() after the initial mix).
inline __m256i finalize(__m256i z) {
  z = mul64(xorshift(z, 30), _mm256_set1_epi64x(Rng::kFinalizer1));
  z = mul64(xorshift(z, 27), _mm256_set1_epi64x(Rng::kFinalizer2));
  return xorshift(z, 31);
}

// Exact double(y) for y < 2^53, matching static_cast<double>(y).
inline __m256d u53_to_double(__m256i y) {
  const __m256i mant_magic = _mm256_set1_epi64x(0x4330000000000000ll);  // 2^52
  const __m256d two52 = _mm256_set1_pd(0x1.0p52);
  const __m256i lo32 = _mm256_and_si256(y, _mm256_set1_epi64x(0xFFFFFFFFll));
  const __m256i hi32 = _mm256_srli_epi64(y, 32);
  const __m256d lo_d = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(lo32, mant_magic)), two52);
  const __m256d hi_d = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(hi32, mant_magic)), two52);
  return _mm256_add_pd(_mm256_mul_pd(hi_d, _mm256_set1_pd(0x1.0p32)), lo_d);
}

}  // namespace

void fork_uniform_batch_avx2(const std::uint64_t* state, std::size_t count,
                             std::uint64_t stream, double* u1,
                             std::uint64_t* state_out) {
  // Lane-invariant parts of fork_stream(): (stream + gamma) * kForkMul and
  // stream * kStreamMul depend only on `stream`, so hoist them as scalars.
  const std::uint64_t fork_mix = (stream + Rng::kGamma) * Rng::kForkMul;
  const __m256i fork_mix_v = _mm256_set1_epi64x(
      static_cast<long long>(fork_mix));
  const __m256i stream_mix_v = _mm256_set1_epi64x(
      static_cast<long long>(stream * Rng::kStreamMul));
  const __m256i gamma_v = _mm256_set1_epi64x(
      static_cast<long long>(Rng::kGamma));

  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i parent = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(state + i));
    // fork_stream: z = state ^ mix; finalize; child = z ^ stream*kStreamMul.
    __m256i child = _mm256_xor_si256(
        finalize(_mm256_xor_si256(parent, fork_mix_v)), stream_mix_v);
    // uniform(): advance by gamma, finalize, take the top 53 bits.
    child = _mm256_add_epi64(child, gamma_v);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(state_out + i), child);
    const __m256i bits = _mm256_srli_epi64(finalize(child), 11);
    _mm256_storeu_pd(
        u1 + i, _mm256_mul_pd(u53_to_double(bits),
                              _mm256_set1_pd(0x1.0p-53)));
  }
  if (i < count)
    fork_uniform_batch_scalar(state + i, count - i, stream, u1 + i,
                              state_out + i);
}

void fork_uniform_screen_batch_avx2(const std::uint64_t* state,
                                    std::size_t count, std::uint64_t stream,
                                    const std::uint32_t* cls,
                                    const double* screen, double* u1,
                                    std::uint64_t* state_out,
                                    std::uint64_t* active_mask) {
  const std::uint64_t fork_mix = (stream + Rng::kGamma) * Rng::kForkMul;
  const __m256i fork_mix_v = _mm256_set1_epi64x(
      static_cast<long long>(fork_mix));
  const __m256i stream_mix_v = _mm256_set1_epi64x(
      static_cast<long long>(stream * Rng::kStreamMul));
  const __m256i gamma_v = _mm256_set1_epi64x(
      static_cast<long long>(Rng::kGamma));

  for (std::size_t w = 0; w < (count + 63) / 64; ++w) active_mask[w] = 0;

  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i parent = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(state + i));
    __m256i child = _mm256_xor_si256(
        finalize(_mm256_xor_si256(parent, fork_mix_v)), stream_mix_v);
    child = _mm256_add_epi64(child, gamma_v);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(state_out + i), child);
    const __m256i bits = _mm256_srli_epi64(finalize(child), 11);
    const __m256d u = _mm256_mul_pd(u53_to_double(bits),
                                    _mm256_set1_pd(0x1.0p-53));
    _mm256_storeu_pd(u1 + i, u);
    // Screen while u is in registers: lane active iff u > screen[cls].
    const __m128i cls4 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(cls + i));
    const __m256d screen4 = _mm256_i32gather_pd(screen, cls4, 8);
    const int lanes =
        _mm256_movemask_pd(_mm256_cmp_pd(u, screen4, _CMP_GT_OQ));
    active_mask[i / 64] |=
        static_cast<std::uint64_t>(lanes) << (i % 64);
  }
  for (; i < count; ++i) {
    Rng child = Rng(state[i]).fork_stream(stream);
    u1[i] = child.uniform();
    state_out[i] = child.state();
    if (u1[i] > screen[cls[i]]) active_mask[i / 64] |= 1ull << (i % 64);
  }
}

}  // namespace tdp::simd::detail

#endif  // TDP_HAVE_AVX2
