// Deterministic random number generation.
//
// All stochastic components (Poisson arrivals, session sizes, probabilistic
// deferral decisions, background traffic) draw from an explicitly seeded
// SplitMix64 generator so that simulations, tests and benches are exactly
// reproducible run-to-run and machine-to-machine.
#pragma once

#include <cstdint>

namespace tdp {

/// SplitMix64: tiny, fast, high-quality 64-bit generator. Satisfies the
/// UniformRandomBitGenerator requirements so it composes with <random>
/// distributions when needed, but we provide our own inverse-transform
/// samplers for full determinism across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential with given mean (> 0), via inverse transform.
  double exponential(double mean);

  /// Poisson with given mean, via Knuth for small means and
  /// normal approximation (rounded, clamped at 0) for large means.
  std::uint64_t poisson(double mean);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Fork a statistically independent stream (for per-component seeding).
  /// Mutates this generator, so calls must come from one thread.
  Rng fork();

  /// Fork the `stream`-th independent child without mutating this
  /// generator. Const and state-free, so parallel tasks may concurrently
  /// derive their own streams from a shared parent: task i always receives
  /// the same stream regardless of thread count or scheduling order —
  /// the determinism contract the batch engine relies on.
  Rng fork_stream(std::uint64_t stream) const;

 private:
  std::uint64_t state_;
};

}  // namespace tdp
