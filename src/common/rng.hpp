// Deterministic random number generation.
//
// All stochastic components (Poisson arrivals, session sizes, probabilistic
// deferral decisions, background traffic) draw from an explicitly seeded
// SplitMix64 generator so that simulations, tests and benches are exactly
// reproducible run-to-run and machine-to-machine.
#pragma once

#include <cstdint>

namespace tdp {

/// SplitMix64: tiny, fast, high-quality 64-bit generator. Satisfies the
/// UniformRandomBitGenerator requirements so it composes with <random>
/// distributions when needed, but we provide our own inverse-transform
/// samplers for full determinism across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  // SplitMix64 constants, shared with the batched SIMD derivation kernels
  // (common/simd.hpp) which must replicate next()/fork_stream() bit-exactly.
  static constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ull;
  static constexpr std::uint64_t kFinalizer1 = 0xBF58476D1CE4E5B9ull;
  static constexpr std::uint64_t kFinalizer2 = 0x94D049BB133111EBull;
  static constexpr std::uint64_t kForkMul = 0xD1342543DE82EF95ull;
  static constexpr std::uint64_t kStreamMul = 0x5851F42D4C957F2Dull;

  explicit Rng(std::uint64_t seed = kGamma) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential with given mean (> 0), via inverse transform.
  double exponential(double mean);

  /// Poisson with given mean, via Knuth for small means and
  /// normal approximation (rounded, clamped at 0) for large means.
  std::uint64_t poisson(double mean);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Fork a statistically independent stream (for per-component seeding).
  /// Mutates this generator, so calls must come from one thread.
  Rng fork();

  /// Fork the `stream`-th independent child without mutating this
  /// generator. Const and state-free, so parallel tasks may concurrently
  /// derive their own streams from a shared parent: task i always receives
  /// the same stream regardless of thread count or scheduling order —
  /// the determinism contract the batch engine relies on.
  Rng fork_stream(std::uint64_t stream) const;

  /// Raw SplitMix64 state. next() is a pure finalizer over the advanced
  /// state, so (state in, state out, draws) is an exact description of a
  /// generator: Rng(state()) replays the remaining sequence. The fleet's
  /// batched draw kernels persist states through this.
  std::uint64_t state() const { return state_; }

 private:
  std::uint64_t state_;
};

}  // namespace tdp
