#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tdp {

std::uint64_t Rng::next() {
  std::uint64_t z = (state_ += kGamma);
  z = (z ^ (z >> 30)) * kFinalizer1;
  z = (z ^ (z >> 27)) * kFinalizer2;
  return z ^ (z >> 31);
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  TDP_REQUIRE(lo <= hi, "uniform range must be ordered");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  TDP_REQUIRE(n > 0, "uniform_index needs a nonempty range");
  // Rejection-free Lemire-style multiply-shift is overkill here; modulo bias
  // is negligible for the small n used in simulations, but guard anyway.
  const std::uint64_t threshold = (~0ull - n + 1) % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  TDP_REQUIRE(mean > 0.0, "exponential mean must be positive");
  double u = uniform();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::uint64_t Rng::poisson(double mean) {
  TDP_REQUIRE(mean >= 0.0, "poisson mean must be nonnegative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = uniform();
    while (product > limit) {
      ++k;
      product *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(draw));
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double z = radius * std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

Rng Rng::fork() {
  // Derive a child seed from two draws to decorrelate the streams.
  const std::uint64_t a = next();
  const std::uint64_t b = next();
  return Rng(a ^ (b * kForkMul) ^ kStreamMul);
}

Rng Rng::fork_stream(std::uint64_t stream) const {
  // SplitMix finalizer over (state, stream) — two rounds so that adjacent
  // stream indices land in unrelated regions of the parent's state space.
  std::uint64_t z = state_ ^ (stream + kGamma) *
                                 kForkMul;
  z = (z ^ (z >> 30)) * kFinalizer1;
  z = (z ^ (z >> 27)) * kFinalizer2;
  z ^= z >> 31;
  return Rng(z ^ (stream * kStreamMul));
}

}  // namespace tdp
