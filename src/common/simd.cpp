#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace tdp::simd {

namespace {

bool cpu_has(const char* feature) {
#if defined(__x86_64__) || defined(__i386__)
  if (std::strcmp(feature, "avx2") == 0)
    return __builtin_cpu_supports("avx2") != 0;
  if (std::strcmp(feature, "avx512f") == 0)
    return __builtin_cpu_supports("avx512f") != 0;
  return false;
#else
  (void)feature;
  return false;
#endif
}

Mode detect_mode() {
  Mode best = avx2_supported() ? Mode::kAvx2 : Mode::kScalar;
  const char* env = std::getenv("TDP_SIMD");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0)
    return best;
  if (std::strcmp(env, "scalar") == 0) return Mode::kScalar;
  if (std::strcmp(env, "avx2") == 0) {
    TDP_REQUIRE(avx2_supported(), "TDP_SIMD=avx2 but host/build lacks AVX2");
    return Mode::kAvx2;
  }
  TDP_REQUIRE(false, "TDP_SIMD must be one of: auto, scalar, avx2");
  return best;
}

// kScalar=0 / kAvx2=1 stored +1 so 0 means "not yet resolved".
std::atomic<int> g_mode{0};

}  // namespace

bool avx2_supported() {
#if defined(TDP_HAVE_AVX2)
  static const bool supported = cpu_has("avx2");
  return supported;
#else
  return false;
#endif
}

Mode mode() {
  int m = g_mode.load(std::memory_order_acquire);
  if (m == 0) {
    m = static_cast<int>(detect_mode()) + 1;
    int expected = 0;
    if (!g_mode.compare_exchange_strong(expected, m,
                                        std::memory_order_acq_rel)) {
      m = expected;
    }
  }
  return static_cast<Mode>(m - 1);
}

void set_mode(Mode m) {
  TDP_REQUIRE(m == Mode::kScalar || avx2_supported(),
              "cannot force a SIMD mode this host/build does not support");
  g_mode.store(static_cast<int>(m) + 1, std::memory_order_release);
}

const char* mode_name() {
  return mode() == Mode::kAvx2 ? "avx2" : "scalar";
}

const char* host_isa() {
  if (cpu_has("avx512f")) return "avx512";
  if (cpu_has("avx2")) return "avx2";
  return "sse2";
}

namespace detail {

void fork_uniform_batch_scalar(const std::uint64_t* state, std::size_t count,
                               std::uint64_t stream, double* u1,
                               std::uint64_t* state_out) {
  for (std::size_t i = 0; i < count; ++i) {
    Rng child = Rng(state[i]).fork_stream(stream);
    u1[i] = child.uniform();
    state_out[i] = child.state();
  }
}

void fork_uniform_screen_batch_scalar(const std::uint64_t* state,
                                      std::size_t count, std::uint64_t stream,
                                      const std::uint32_t* cls,
                                      const double* screen, double* u1,
                                      std::uint64_t* state_out,
                                      std::uint64_t* active_mask) {
  for (std::size_t w = 0; w < (count + 63) / 64; ++w) active_mask[w] = 0;
  for (std::size_t i = 0; i < count; ++i) {
    Rng child = Rng(state[i]).fork_stream(stream);
    u1[i] = child.uniform();
    state_out[i] = child.state();
    if (u1[i] > screen[cls[i]]) active_mask[i / 64] |= 1ull << (i % 64);
  }
}

}  // namespace detail

void fork_uniform_batch(const std::uint64_t* state, std::size_t count,
                        std::uint64_t stream, double* u1,
                        std::uint64_t* state_out) {
#if defined(TDP_HAVE_AVX2)
  if (mode() == Mode::kAvx2) {
    detail::fork_uniform_batch_avx2(state, count, stream, u1, state_out);
    return;
  }
#endif
  detail::fork_uniform_batch_scalar(state, count, stream, u1, state_out);
}

void fork_uniform_screen_batch(const std::uint64_t* state, std::size_t count,
                               std::uint64_t stream,
                               const std::uint32_t* cls, const double* screen,
                               double* u1, std::uint64_t* state_out,
                               std::uint64_t* active_mask) {
#if defined(TDP_HAVE_AVX2)
  if (mode() == Mode::kAvx2) {
    detail::fork_uniform_screen_batch_avx2(state, count, stream, cls, screen,
                                           u1, state_out, active_mask);
    return;
  }
#endif
  detail::fork_uniform_screen_batch_scalar(state, count, stream, cls, screen,
                                           u1, state_out, active_mask);
}

}  // namespace tdp::simd
