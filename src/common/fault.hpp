// Deterministic fault injection for the TUBE control loop.
//
// The prototype's control loop (GUIs pull prices once per period, the
// Optimizer re-prices from measured usage) is a distributed system: pulls
// can be dropped or arrive late, usage telemetry can be lost or corrupted,
// and a 1-D re-pricing solve can blow its iteration budget. A production
// pricer must keep publishing sane rewards through all of that, so this
// module makes those failures *reproducible*: a `FaultPlan` gives the rates,
// and a `FaultInjector` answers "does fault X hit site Y at time T?" as a
// pure function of (plan seed, fault domain, entity id, period, attempt).
//
// Determinism contract (mirrors the population's): every decision derives a
// private stream through non-mutating `Rng::fork_stream` chains, so the
// injector is stateless, const, and thread-safe, and the fault sequence for
// a given plan is independent of shard layout, thread count, and query
// order. A default-constructed (or all-zero-rate) injector never fires, and
// the consuming code paths are written so that a never-firing injector is
// bit-identical to no injector at all.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace tdp {

/// One correlated storm process: a seeded two-state Markov chain over
/// absolute periods. Each period the chain is ON or OFF; OFF->ON with
/// probability `onset`, ON stays ON with probability `persist`. While the
/// chain is ON, every site in the regime's fault domain fails independently
/// with probability `intensity` each period — so faults arrive in *bursts*
/// whose mean length is 1/(1-persist) periods, unlike the i.i.d. rates in
/// FaultPlan. The stationary on-fraction (the storm duty cycle) is
/// onset / (onset + 1 - persist).
///
/// The chain itself is a pure function of (plan seed, storm domain, tick):
/// one fork_stream draw per elapsed period, independent of entity, shard
/// layout, and query order — so storm plans inherit the full determinism
/// contract.
struct StormRegime {
  double onset = 0.0;      ///< P(OFF -> ON) per period; 0 disables the regime
  double persist = 0.0;    ///< P(ON -> ON) per period
  double intensity = 1.0;  ///< P(site fails | storm ON) per site per period

  bool enabled() const { return onset > 0.0; }
};

/// Rates and parameters of one chaos experiment. All probabilities are
/// per-site per-period (a "site" is a subscriber for the price path, a
/// fault domain — fleet shard or whole telemetry aggregate — for the
/// measurement path, and the solver itself for the solver path).
struct FaultPlan {
  // --- price publication path (per subscriber per period) ---
  double price_pull_drop = 0.0;   ///< P(one fetch attempt fails)
  double clock_skew = 0.0;        ///< P(subscriber's period clock is skewed
                                  ///< and it reads its stale cache instead
                                  ///< of fetching)

  // --- measurement path (per fault domain per period) ---
  double measurement_loss = 0.0;      ///< sample never arrives
  double measurement_nan = 0.0;       ///< sample arrives as NaN
  double measurement_negative = 0.0;  ///< sample arrives negative
  double measurement_spike = 0.0;     ///< sample multiplied by spike_factor
  double spike_factor = 8.0;          ///< outlier magnitude for spikes

  /// Absolute periods in which the whole measurement path is down (a
  /// scheduled blackout: every domain's sample is lost with certainty).
  std::vector<std::uint64_t> measurement_blackouts;

  // --- correlated storm regimes (independent Markov chains) ---
  /// Burst measurement blackouts: while ON, each measurement domain loses
  /// its sample with P(intensity) — at intensity 1 a full blackout window.
  StormRegime storm_blackout;
  /// Channel flapping: while ON, each price fetch attempt additionally
  /// fails with P(intensity), on top of the i.i.d. price_pull_drop rate.
  StormRegime storm_channel;
  /// Solver-starvation windows: while ON, the re-pricing solve is starved
  /// to solver_starved_budget with P(intensity) each period.
  StormRegime storm_solver;

  // --- price-determination path (per period) ---
  double solver_exhaustion = 0.0;  ///< P(the 1-D solve is cut off before
                                   ///< convergence — iteration budget
                                   ///< starved to solver_starved_budget)
  std::size_t solver_starved_budget = 2;

  // --- population drift (per day; long-horizon runs only) ---
  // Drift is NOT an observation fault: it perturbs the simulated users'
  // patience indices themselves, so the clean and the observed world drift
  // together. It therefore never arms guards and never contributes to
  // any(). The multi-day driver reads beta_drift_scale() and rebuilds the
  // deferral lag tables for each day; single-day drivers ignore it.
  /// Smooth geometric drift: every class's patience index is scaled by
  /// (1 + drift_beta_rate)^day. Must exceed -1.
  double drift_beta_rate = 0.0;
  /// One-time regime shift: from drift_step_day onward the scale gains an
  /// extra factor (1 + drift_beta_step). Must exceed -1.
  double drift_beta_step = 0.0;
  std::size_t drift_step_day = 0;

  std::uint64_t seed = 20110704;

  /// True when any *observation* fault can ever fire under this plan
  /// (population drift deliberately excluded — see above).
  bool any() const;

  /// True when the plan drifts the population's patience indices.
  bool drifts() const {
    return drift_beta_rate != 0.0 || drift_beta_step != 0.0;
  }
};

class FaultInjector {
 public:
  /// Disabled injector: never fires, costs nothing.
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan);

  bool enabled() const { return enabled_; }
  const FaultPlan& plan() const { return plan_; }

  /// Entity id for "the one aggregate telemetry stream" (vs a shard id).
  static constexpr std::uint64_t kAggregateEntity = ~0ull;

  /// The three correlated storm processes a plan can carry.
  enum class StormDomain : std::uint64_t {
    kBlackout = 1,
    kChannel = 2,
    kSolver = 3,
  };

  /// Is `domain`'s storm chain ON in `abs_period`? Pure function of
  /// (plan seed, domain, abs_period): the chain starts OFF at period 0 and
  /// is replayed draw by draw, so any two queries — from any thread, in any
  /// order — agree. O(abs_period) per call; ticks are period counts
  /// (hundreds), so replay cost is noise next to a shard sweep.
  bool storm_active(StormDomain domain, std::uint64_t abs_period) const;

  /// Does fetch attempt `attempt` by `subscriber` in `abs_period` fail?
  bool drop_price_pull(std::uint64_t subscriber, std::uint64_t abs_period,
                       std::uint64_t attempt = 0) const;

  /// Is `subscriber`'s period clock skewed in `abs_period` (it believes the
  /// period has not rolled over and serves its cache without fetching)?
  bool skew_clock(std::uint64_t subscriber, std::uint64_t abs_period) const;

  enum class MeasurementFault { kNone, kLost, kNaN, kNegative, kSpike };

  /// What happens to fault domain `entity`'s sample for `abs_period`.
  MeasurementFault measurement_fault(std::uint64_t entity,
                                     std::uint64_t abs_period) const;

  /// Apply a measurement fault to a clean value (kLost has no corrupted
  /// value — the sample simply never arrives; callers handle it as a gap).
  double corrupt(MeasurementFault fault, double clean) const;

  /// Is the 1-D re-pricing solve starved of iterations in `abs_period`?
  bool exhaust_solver(std::uint64_t abs_period) const;

  /// Multiplicative scale on class `cls`'s patience index for `day`: a pure
  /// function of the plan alone (same for every class today; the class
  /// argument fixes the signature for per-class drift later). 1.0 when the
  /// plan carries no drift — including for a disabled injector.
  double beta_drift_scale(std::uint32_t cls, std::size_t day) const;

 private:
  enum Domain : std::uint64_t {
    kDomainPricePull = 1,
    kDomainClock = 2,
    kDomainMeasurement = 3,
    kDomainSolver = 4,
    // Storm streams get their own domains so they never collide with the
    // i.i.d. draws above: kDomainStormState carries the per-domain Markov
    // chain (entity = StormDomain id), the rest carry per-site intensity
    // draws while a chain is ON.
    kDomainStormState = 5,
    kDomainStormChannel = 6,
    kDomainStormMeasurement = 7,
    kDomainStormSolver = 8,
  };

  /// The private stream for one decision site; pure function of the
  /// arguments and the plan seed.
  Rng stream(Domain domain, std::uint64_t entity, std::uint64_t tick,
             std::uint64_t attempt) const;

  FaultPlan plan_{};
  Rng root_{};  ///< never advanced; all streams fork off it
  bool enabled_ = false;
};

const char* to_string(FaultInjector::MeasurementFault fault);

}  // namespace tdp
