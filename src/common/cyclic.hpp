// Cyclic period arithmetic.
//
// The paper's day is a ring of n periods. "The time between periods i and k
// is given by i - k, which is the number b in [1, n], b == i - k (mod n).
// If k > i, i - k is the time between period k on one day and period i on
// the next." (Section II.)
#pragma once

#include <cstddef>

#include "common/error.hpp"

namespace tdp {

/// Lag (in whole periods, in [1, n]) from period `from` to period `to` on a
/// ring of `n` periods. Periods are 0-based here; the paper's 1-based
/// formulas translate directly. `from == to` maps to a full day (n), which
/// by convention never occurs as a deferral target in the models.
inline std::size_t cyclic_lag(std::size_t from, std::size_t to,
                              std::size_t n) {
  TDP_REQUIRE(n > 0, "ring must have at least one period");
  TDP_REQUIRE(from < n && to < n, "period index out of range");
  const std::size_t diff = (to + n - from) % n;
  return diff == 0 ? n : diff;
}

/// Period reached by advancing `lag` periods from `from` on a ring of `n`.
inline std::size_t cyclic_advance(std::size_t from, std::size_t lag,
                                  std::size_t n) {
  TDP_REQUIRE(n > 0, "ring must have at least one period");
  TDP_REQUIRE(from < n, "period index out of range");
  return (from + lag) % n;
}

}  // namespace tdp
