// Error handling for the TDP library.
//
// Following the C++ Core Guidelines (E.2, E.14) we throw exceptions derived
// from a single library base type for programming and modeling errors, and
// use TDP_REQUIRE for precondition checks on public API boundaries.
#pragma once

#include <stdexcept>
#include <string>

namespace tdp {

/// Base class for all errors thrown by the TDP library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition of a public API.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or produced an invalid result.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

}  // namespace tdp

/// Check a precondition on a public API boundary; throws PreconditionError.
#define TDP_REQUIRE(cond, msg)                                    \
  do {                                                            \
    if (!(cond)) {                                                \
      throw ::tdp::PreconditionError(std::string(__func__) +      \
                                     ": precondition failed: " +  \
                                     (msg) + " (" #cond ")");     \
    }                                                             \
  } while (false)
