// Runtime-dispatched SIMD support with a bitwise-identical scalar fallback.
//
// Every vector kernel in this repo obeys one discipline: **lanes are
// independent outputs, never partial sums of one output**. A lane executes
// exactly the operation sequence the scalar code would execute for that
// output, so scalar and SIMD builds — and any lane width — produce
// bitwise-identical doubles. Cross-lane (horizontal) reductions are
// forbidden; transcendentals that the scalar path takes from libm
// (exp/log/pow) stay scalar calls on both paths. Integer kernels
// (SplitMix64 stream derivation, the 53-bit uniform conversion) are exact
// in any width, so they vectorize freely.
//
// Dispatch is resolved once per process from CPUID plus the TDP_SIMD
// environment variable ("scalar" forces the fallback, "avx2" requests the
// vector path, unset/"auto" uses the best supported). Tests flip the mode
// at runtime via set_mode() to prove scalar-vs-SIMD bit identity on the
// same host (tests/test_simd.cpp).
//
// The AVX2 implementations live in *_avx2.cpp translation units compiled
// with -mavx2 (gated by the compiler check in src/common/CMakeLists.txt);
// nothing in those TUs runs unless mode() says the host supports it. On
// compilers or targets without AVX2 support the build simply omits the
// vector TUs and mode() is pinned to kScalar.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tdp::simd {

enum class Mode : std::uint8_t {
  kScalar = 0,  ///< portable fallback, always available
  kAvx2 = 1,    ///< 4 × 64-bit lanes (requires CPU + build support)
};

/// True when this build contains the AVX2 kernels and the CPU reports
/// AVX2. A false return pins mode() to kScalar.
bool avx2_supported();

/// The active mode: TDP_SIMD env override if valid, else the best
/// supported width. Cached after the first call.
Mode mode();

/// Force a mode (tests). Forcing kAvx2 on a host without support throws.
void set_mode(Mode mode);

/// "scalar" or "avx2" for logs and BENCH_JSON.
const char* mode_name();

/// Host ISA summary for bench provenance: "avx512", "avx2", or "sse2"
/// (what the CPU supports, independent of the active mode).
const char* host_isa();

// ---- Batched SplitMix64 stream derivation ---------------------------------
//
// For each i in [0, count): take the child stream
// Rng(state[i]).fork_stream(stream), draw its first uniform() into u1[i],
// and store the child's post-draw state in state_out[i] (so a caller can
// resume the child's draw sequence with Rng(state_out[i])). Bitwise
// identical to the Rng calls in every mode; the fleet's per-(user, period)
// session loop batches its first Poisson draw through this.
void fork_uniform_batch(const std::uint64_t* state, std::size_t count,
                        std::uint64_t stream, double* u1,
                        std::uint64_t* state_out);

/// fork_uniform_batch plus an activity screen evaluated while u1 is still
/// in registers: `active_mask` gets bit i set iff u1[i] > screen[cls[i]]
/// (mask words cover 64 entries each; trailing bits stay 0). The fleet
/// session loop iterates only the set bits — with the paper's mixes ~90%
/// of user-periods are screened out as proven count==0 without ever
/// touching their per-user state scalar-side. screen values are per
/// class: an always-active class uses -1.0 (a uniform is never <= -1),
/// a never-active class +infinity.
void fork_uniform_screen_batch(const std::uint64_t* state, std::size_t count,
                               std::uint64_t stream,
                               const std::uint32_t* cls, const double* screen,
                               double* u1, std::uint64_t* state_out,
                               std::uint64_t* active_mask);

namespace detail {
// The mode-specific implementations (scalar always present; avx2 present
// when TDP_HAVE_AVX2). Exposed for the bitwise cross-checks in tests.
void fork_uniform_batch_scalar(const std::uint64_t* state, std::size_t count,
                               std::uint64_t stream, double* u1,
                               std::uint64_t* state_out);
void fork_uniform_screen_batch_scalar(const std::uint64_t* state,
                                      std::size_t count, std::uint64_t stream,
                                      const std::uint32_t* cls,
                                      const double* screen, double* u1,
                                      std::uint64_t* state_out,
                                      std::uint64_t* active_mask);
#if defined(TDP_HAVE_AVX2)
void fork_uniform_batch_avx2(const std::uint64_t* state, std::size_t count,
                             std::uint64_t stream, double* u1,
                             std::uint64_t* state_out);
void fork_uniform_screen_batch_avx2(const std::uint64_t* state,
                                    std::size_t count, std::uint64_t stream,
                                    const std::uint32_t* cls,
                                    const double* screen, double* u1,
                                    std::uint64_t* state_out,
                                    std::uint64_t* active_mask);
#endif
}  // namespace detail

}  // namespace tdp::simd
