// Work-sharing thread pool and deterministic parallel_for.
//
// The batch workloads in this repo (cost sweeps, perturbation studies,
// multi-start estimation) are a few dozen independent convex solves, each
// taking milliseconds to seconds. A pool with a mutex-guarded chunked index
// claim is therefore the right machinery: claim overhead is nanoseconds
// against millisecond tasks, and the coarse locking makes the scheduling
// logic obviously race-free under TSan.
//
// Determinism contract: parallel_for(n, fn) invokes fn(i) exactly once for
// every i in [0, n). Which thread runs which index is unspecified, so fn
// must only write to per-index state (the callers in core/estimation write
// into pre-sized result slots). Under that discipline results are
// bit-identical for any thread count, including 1.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tdp {

/// A fixed-size pool. `threads` counts the caller: ThreadPool(4) spawns 3
/// workers and the thread calling for_each_index participates as the 4th.
/// With `pin` set, worker t is pinned to core (t+1) % ncpu (the caller is
/// assumed on core 0); pinning is Linux-only and silently a no-op
/// elsewhere or when affinity calls fail (e.g. restricted cpusets).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads, bool pin = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the participating caller).
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Run fn(i) for every i in [0, count), distributing indices over the
  /// pool; blocks until all complete. The first exception (lowest index)
  /// is rethrown after the batch drains. Not reentrant: one batch at a
  /// time per pool.
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  /// Claim-and-run loop shared by workers and the caller.
  void drain_batch();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* task_ = nullptr;  // guarded
  std::size_t task_count_ = 0;                              // guarded
  std::size_t next_index_ = 0;                              // guarded
  std::size_t pending_ = 0;                                 // guarded
  std::uint64_t generation_ = 0;                            // guarded
  std::exception_ptr error_;                                // guarded
  std::size_t error_index_ = 0;                             // guarded
  bool stop_ = false;                                       // guarded
};

/// max(1, std::thread::hardware_concurrency()).
std::size_t hardware_threads();

/// Process-wide default parallelism: the TDP_THREADS environment variable
/// when set to a positive integer, otherwise hardware_threads(). Adjustable
/// at runtime (tests pin it to exercise both serial and parallel paths).
std::size_t default_thread_count();
void set_default_thread_count(std::size_t threads);

/// Process-wide thread-pinning policy: the TDP_PIN_THREADS environment
/// variable (1/true/on enables) read once, overridable at runtime.
/// Pinning reduces cross-core migration and, with first-touch allocation,
/// keeps each shard's pages local to its worker's NUMA node; on
/// single-node hosts it degrades to plain affinity with no other effect.
/// Changing the policy resets the global pool so new workers honour it.
bool pin_threads();
void set_pin_threads(bool pin);

/// The shared pool sized to default_thread_count() (resized lazily when the
/// default changes). Created on first use.
ThreadPool& global_pool();

/// Run fn(i) for i in [0, n) on `threads` threads (0 = default). threads<=1
/// or n<=1 runs inline on the caller with no pool involvement. Uses the
/// global pool when `threads` matches its size, otherwise a transient pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace tdp
