#include "common/fault.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"

namespace tdp {

bool FaultPlan::any() const {
  return price_pull_drop > 0.0 || clock_skew > 0.0 ||
         measurement_loss > 0.0 || measurement_nan > 0.0 ||
         measurement_negative > 0.0 || measurement_spike > 0.0 ||
         solver_exhaustion > 0.0 || !measurement_blackouts.empty() ||
         storm_blackout.enabled() || storm_channel.enabled() ||
         storm_solver.enabled();
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), root_(plan_.seed), enabled_(plan_.any()) {
  const auto in_unit = [](double p) { return p >= 0.0 && p <= 1.0; };
  TDP_REQUIRE(in_unit(plan_.price_pull_drop) && in_unit(plan_.clock_skew) &&
                  in_unit(plan_.measurement_loss) &&
                  in_unit(plan_.measurement_nan) &&
                  in_unit(plan_.measurement_negative) &&
                  in_unit(plan_.measurement_spike) &&
                  in_unit(plan_.solver_exhaustion),
              "fault probabilities must lie in [0, 1]");
  TDP_REQUIRE(plan_.measurement_loss + plan_.measurement_nan +
                      plan_.measurement_negative + plan_.measurement_spike <=
                  1.0,
              "measurement fault probabilities must sum to at most 1");
  TDP_REQUIRE(plan_.spike_factor > 0.0, "spike factor must be positive");
  TDP_REQUIRE(plan_.solver_starved_budget >= 1,
              "starved budget must allow at least one iteration");
  TDP_REQUIRE(plan_.drift_beta_rate > -1.0 && plan_.drift_beta_step > -1.0,
              "beta drift factors must keep patience indices positive");
  const auto storm_ok = [&](const StormRegime& regime) {
    return in_unit(regime.onset) && in_unit(regime.persist) &&
           in_unit(regime.intensity);
  };
  TDP_REQUIRE(storm_ok(plan_.storm_blackout) &&
                  storm_ok(plan_.storm_channel) &&
                  storm_ok(plan_.storm_solver),
              "storm onset/persist/intensity must lie in [0, 1]");
  std::sort(plan_.measurement_blackouts.begin(),
            plan_.measurement_blackouts.end());
}

Rng FaultInjector::stream(Domain domain, std::uint64_t entity,
                          std::uint64_t tick, std::uint64_t attempt) const {
  return root_.fork_stream(static_cast<std::uint64_t>(domain))
      .fork_stream(entity)
      .fork_stream(tick)
      .fork_stream(attempt);
}

bool FaultInjector::storm_active(StormDomain domain,
                                 std::uint64_t abs_period) const {
  if (!enabled_) return false;
  const StormRegime* regime = nullptr;
  switch (domain) {
    case StormDomain::kBlackout:
      regime = &plan_.storm_blackout;
      break;
    case StormDomain::kChannel:
      regime = &plan_.storm_channel;
      break;
    case StormDomain::kSolver:
      regime = &plan_.storm_solver;
      break;
  }
  if (regime == nullptr || !regime->enabled()) return false;
  // Replay the chain from period 0: one transition draw per period, keyed
  // only by (domain, period) so every query sees the same storm history.
  bool on = false;
  const std::uint64_t id = static_cast<std::uint64_t>(domain);
  for (std::uint64_t t = 0; t <= abs_period; ++t) {
    const double u = stream(kDomainStormState, id, t, 0).uniform();
    on = on ? (u < regime->persist) : (u < regime->onset);
  }
  return on;
}

bool FaultInjector::drop_price_pull(std::uint64_t subscriber,
                                    std::uint64_t abs_period,
                                    std::uint64_t attempt) const {
  if (!enabled_) return false;
  if (plan_.price_pull_drop > 0.0 &&
      stream(kDomainPricePull, subscriber, abs_period, attempt)
          .bernoulli(plan_.price_pull_drop)) {
    return true;
  }
  // Channel flapping: while the storm is ON every fetch attempt also fails
  // with P(intensity). Streams are stateless forks, so taking the base
  // draw first never perturbs the storm draw (and vice versa).
  if (storm_active(StormDomain::kChannel, abs_period)) {
    return stream(kDomainStormChannel, subscriber, abs_period, attempt)
        .bernoulli(plan_.storm_channel.intensity);
  }
  return false;
}

bool FaultInjector::skew_clock(std::uint64_t subscriber,
                               std::uint64_t abs_period) const {
  if (!enabled_ || plan_.clock_skew <= 0.0) return false;
  return stream(kDomainClock, subscriber, abs_period, 0)
      .bernoulli(plan_.clock_skew);
}

FaultInjector::MeasurementFault FaultInjector::measurement_fault(
    std::uint64_t entity, std::uint64_t abs_period) const {
  if (!enabled_) return MeasurementFault::kNone;
  if (std::binary_search(plan_.measurement_blackouts.begin(),
                         plan_.measurement_blackouts.end(), abs_period)) {
    return MeasurementFault::kLost;
  }
  // Burst blackout: while the storm is ON each domain's sample is lost
  // with P(intensity) — a correlated outage the i.i.d. rates below can't
  // produce.
  if (storm_active(StormDomain::kBlackout, abs_period) &&
      stream(kDomainStormMeasurement, entity, abs_period, 0)
          .bernoulli(plan_.storm_blackout.intensity)) {
    return MeasurementFault::kLost;
  }
  // One uniform draw split across the fault kinds, so the kinds are
  // mutually exclusive and their rates add.
  const double u =
      stream(kDomainMeasurement, entity, abs_period, 0).uniform();
  double edge = plan_.measurement_loss;
  if (u < edge) return MeasurementFault::kLost;
  edge += plan_.measurement_nan;
  if (u < edge) return MeasurementFault::kNaN;
  edge += plan_.measurement_negative;
  if (u < edge) return MeasurementFault::kNegative;
  edge += plan_.measurement_spike;
  if (u < edge) return MeasurementFault::kSpike;
  return MeasurementFault::kNone;
}

double FaultInjector::corrupt(MeasurementFault fault, double clean) const {
  switch (fault) {
    case MeasurementFault::kNone:
      return clean;
    case MeasurementFault::kNaN:
    case MeasurementFault::kLost:
      return std::numeric_limits<double>::quiet_NaN();
    case MeasurementFault::kNegative:
      // Strictly negative even when the clean sample is zero.
      return -(std::fabs(clean) + 1.0);
    case MeasurementFault::kSpike:
      return clean * plan_.spike_factor + 1.0;
  }
  return clean;
}

double FaultInjector::beta_drift_scale(std::uint32_t /*cls*/,
                                       std::size_t day) const {
  if (!plan_.drifts()) return 1.0;
  double scale = std::pow(1.0 + plan_.drift_beta_rate,
                          static_cast<double>(day));
  if (plan_.drift_beta_step != 0.0 && day >= plan_.drift_step_day) {
    scale *= 1.0 + plan_.drift_beta_step;
  }
  return scale;
}

bool FaultInjector::exhaust_solver(std::uint64_t abs_period) const {
  if (!enabled_) return false;
  if (plan_.solver_exhaustion > 0.0 &&
      stream(kDomainSolver, 0, abs_period, 0)
          .bernoulli(plan_.solver_exhaustion)) {
    return true;
  }
  if (storm_active(StormDomain::kSolver, abs_period)) {
    return stream(kDomainStormSolver, 0, abs_period, 0)
        .bernoulli(plan_.storm_solver.intensity);
  }
  return false;
}

const char* to_string(FaultInjector::MeasurementFault fault) {
  switch (fault) {
    case FaultInjector::MeasurementFault::kNone:
      return "none";
    case FaultInjector::MeasurementFault::kLost:
      return "lost";
    case FaultInjector::MeasurementFault::kNaN:
      return "nan";
    case FaultInjector::MeasurementFault::kNegative:
      return "negative";
    case FaultInjector::MeasurementFault::kSpike:
      return "spike";
  }
  return "unknown";
}

}  // namespace tdp
