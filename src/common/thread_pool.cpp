#include "common/thread_pool.hpp"

#include <cstdlib>
#include <cstring>
#include <memory>

#if defined(__linux__)
#include <sched.h>
#endif

#include "common/error.hpp"

namespace tdp {

namespace {

// Pin the calling thread to one core. Best-effort: failures (non-Linux,
// restricted cpuset, core offline) leave the thread unpinned.
void pin_self_to_core(std::size_t core) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(core % hardware_threads()), &set);
  (void)sched_setaffinity(0, sizeof(set), &set);
#else
  (void)core;
#endif
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads, bool pin) {
  TDP_REQUIRE(threads >= 1, "a pool needs at least the calling thread");
  if (pin) pin_self_to_core(0);  // the caller participates from core 0
  workers_.reserve(threads - 1);
  for (std::size_t t = 0; t + 1 < threads; ++t) {
    workers_.emplace_back([this, t, pin] {
      // Worker t takes core t+1, leaving core 0 for the participating
      // caller. Self-pinning before the first claim means the worker's
      // first-touch writes already land on its final core's node.
      if (pin) pin_self_to_core(t + 1);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::for_each_index(std::size_t count,
                                const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TDP_REQUIRE(task_ == nullptr, "pool batches may not nest");
    task_ = &fn;
    task_count_ = count;
    next_index_ = 0;
    pending_ = count;
    error_ = nullptr;
    error_index_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  drain_batch();
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  task_ = nullptr;
  task_count_ = 0;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::drain_batch() {
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t index = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (task_ == nullptr || next_index_ >= task_count_) return;
      index = next_index_++;
      fn = task_;
    }
    std::exception_ptr caught;
    try {
      (*fn)(index);
    } catch (...) {
      caught = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (caught && (!error_ || index < error_index_)) {
      error_ = caught;
      error_index_ = index;
    }
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    drain_batch();
  }
}

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

namespace {

std::size_t env_default_threads() {
  if (const char* env = std::getenv("TDP_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return hardware_threads();
}

bool env_pin_threads() {
  const char* env = std::getenv("TDP_PIN_THREADS");
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0 ||
         std::strcmp(env, "on") == 0;
}

std::mutex g_pool_mutex;
std::size_t g_default_threads = 0;  // 0 = not yet initialized
int g_pin_threads = -1;             // -1 = not yet initialized
std::unique_ptr<ThreadPool> g_pool;
bool g_pool_pinned = false;

}  // namespace

std::size_t default_thread_count() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_default_threads == 0) g_default_threads = env_default_threads();
  return g_default_threads;
}

void set_default_thread_count(std::size_t threads) {
  TDP_REQUIRE(threads >= 1, "thread count must be positive");
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_default_threads = threads;
  if (g_pool && g_pool->thread_count() != threads) g_pool.reset();
}

bool pin_threads() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pin_threads < 0) g_pin_threads = env_pin_threads() ? 1 : 0;
  return g_pin_threads == 1;
}

void set_pin_threads(bool pin) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_pin_threads = pin ? 1 : 0;
  if (g_pool && g_pool_pinned != pin) g_pool.reset();
}

ThreadPool& global_pool() {
  const std::size_t threads = default_thread_count();
  const bool pin = pin_threads();
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool || g_pool->thread_count() != threads || g_pool_pinned != pin) {
    g_pool = std::make_unique<ThreadPool>(threads, pin);
    g_pool_pinned = pin;
  }
  return *g_pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (threads == default_thread_count()) {
    global_pool().for_each_index(n, fn);
    return;
  }
  ThreadPool transient(threads);
  transient.for_each_index(n, fn);
}

}  // namespace tdp
