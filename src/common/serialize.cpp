#include "common/serialize.hpp"

#include <bit>
#include <cmath>
#include <cstring>

namespace tdp::ser {
namespace {

/// Header layout: magic[4] | version u32 | payload_size u64. The CRC-32 of
/// the payload follows the payload itself.
constexpr std::size_t kHeaderSize = 4 + 4 + 8;
constexpr std::size_t kCrcSize = 4;

std::uint32_t crc_table_entry(std::uint32_t i) {
  std::uint32_t c = i;
  for (int k = 0; k < 8; ++k) {
    c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
  }
  return c;
}

const std::uint32_t* crc_table() {
  static const auto table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) t[i] = crc_table_entry(i);
    return t;
  }();
  return table;
}

void put_u32_at(std::vector<std::uint8_t>& buf, std::size_t at,
                std::uint32_t v) {
  buf[at + 0] = static_cast<std::uint8_t>(v);
  buf[at + 1] = static_cast<std::uint8_t>(v >> 8);
  buf[at + 2] = static_cast<std::uint8_t>(v >> 16);
  buf[at + 3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  const std::uint32_t* table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Writer::Writer(std::string_view magic, std::uint32_t version)
    : version_(version) {
  TDP_REQUIRE(magic.size() == 4, "format magic must be exactly 4 bytes");
  std::memcpy(magic_, magic.data(), 4);
}

void Writer::u8(std::uint8_t v) { payload_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void Writer::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void Writer::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::bytes(const std::uint8_t* data, std::size_t size) {
  payload_.insert(payload_.end(), data, data + size);
}

void Writer::str(std::string_view s) {
  TDP_REQUIRE(s.size() <= 0xFFFFFFFFu, "string too long to serialize");
  u32(static_cast<std::uint32_t>(s.size()));
  bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void Writer::vec_f64(const std::vector<double>& v) {
  u64(v.size());
  for (double x : v) f64(x);
}

void Writer::vec_u64(const std::vector<std::uint64_t>& v) {
  u64(v.size());
  for (std::uint64_t x : v) u64(x);
}

std::size_t Writer::begin_section(std::uint32_t tag) {
  TDP_REQUIRE(!in_section_, "sections do not nest");
  in_section_ = true;
  u32(tag);
  const std::size_t token = payload_.size();
  u32(0);  // length placeholder, patched by end_section
  return token;
}

void Writer::end_section(std::size_t token) {
  TDP_REQUIRE(in_section_, "no open section");
  in_section_ = false;
  const std::size_t length = payload_.size() - token - 4;
  TDP_REQUIRE(length <= 0xFFFFFFFFu, "section too large");
  put_u32_at(payload_, token, static_cast<std::uint32_t>(length));
}

std::vector<std::uint8_t> Writer::finish() {
  TDP_REQUIRE(!finished_, "Writer::finish is single-shot");
  TDP_REQUIRE(!in_section_, "unclosed section at finish");
  finished_ = true;
  return frame(std::string_view(reinterpret_cast<const char*>(magic_), 4),
               version_, payload_);
}

std::vector<std::uint8_t> Writer::take_payload() {
  TDP_REQUIRE(!finished_, "Writer::take_payload is single-shot");
  TDP_REQUIRE(!in_section_, "unclosed section at take_payload");
  finished_ = true;
  return std::move(payload_);
}

std::vector<std::uint8_t> Writer::frame(
    std::string_view magic, std::uint32_t version,
    const std::vector<std::uint8_t>& payload) {
  TDP_REQUIRE(magic.size() == 4, "format magic must be exactly 4 bytes");
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload.size() + kCrcSize);
  out.insert(out.end(), magic.data(), magic.data() + 4);
  out.resize(kHeaderSize);
  put_u32_at(out, 4, version);
  const std::uint64_t size = payload.size();
  for (int i = 0; i < 8; ++i) {
    out[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(size >> (8 * i));
  }
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  out.resize(out.size() + kCrcSize);
  put_u32_at(out, out.size() - kCrcSize, crc);
  return out;
}

Reader::Reader(const std::uint8_t* data, std::size_t size,
               std::string_view magic, std::uint32_t min_version,
               std::uint32_t max_version)
    : data_(data) {
  TDP_REQUIRE(magic.size() == 4, "format magic must be exactly 4 bytes");
  if (data == nullptr || size < kHeaderSize + kCrcSize) {
    throw FormatError("serialized buffer truncated: no room for header");
  }
  if (std::memcmp(data, magic.data(), 4) != 0) {
    throw FormatError("bad magic: not a " + std::string(magic) + " buffer");
  }
  version_ = static_cast<std::uint32_t>(data[4]) |
             static_cast<std::uint32_t>(data[5]) << 8 |
             static_cast<std::uint32_t>(data[6]) << 16 |
             static_cast<std::uint32_t>(data[7]) << 24;
  if (version_ < min_version || version_ > max_version) {
    throw FormatError("unsupported format version " +
                      std::to_string(version_));
  }
  std::uint64_t payload_size = 0;
  for (int i = 0; i < 8; ++i) {
    payload_size |= static_cast<std::uint64_t>(data[8 + i]) << (8 * i);
  }
  if (payload_size != size - kHeaderSize - kCrcSize) {
    throw FormatError("payload length mismatch: header says " +
                      std::to_string(payload_size) + ", buffer holds " +
                      std::to_string(size - kHeaderSize - kCrcSize));
  }
  pos_ = kHeaderSize;
  payload_end_ = kHeaderSize + static_cast<std::size_t>(payload_size);
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(data[payload_end_ + i]) << (8 * i);
  }
  const std::uint32_t actual =
      crc32(data + kHeaderSize, static_cast<std::size_t>(payload_size));
  if (stored != actual) {
    throw FormatError("payload CRC mismatch: corrupt or truncated buffer");
  }
}

void Reader::need(std::size_t n) const {
  const std::size_t end = in_section_ ? section_end_ : payload_end_;
  if (n > end - pos_) {
    throw FormatError("serialized buffer truncated: need " +
                      std::to_string(n) + " bytes, " +
                      std::to_string(end - pos_) + " remain");
  }
}

std::size_t Reader::remaining() const {
  return (in_section_ ? section_end_ : payload_end_) - pos_;
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  const std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | static_cast<std::uint16_t>(data_[pos_ + 1]) << 8);
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }

double Reader::f64() { return std::bit_cast<double>(u64()); }

bool Reader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw FormatError("boolean field holds " + std::to_string(v));
  return v == 1;
}

std::string Reader::str() {
  const std::uint32_t size = u32();
  need(size);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), size);
  pos_ += size;
  return s;
}

std::vector<double> Reader::vec_f64(std::size_t max_count) {
  const std::uint64_t count = u64();
  // Validate against the bytes actually present *before* allocating: a
  // corrupt count must fail cleanly, never drive a multi-GB resize.
  if (count > remaining() / 8 || count > max_count) {
    throw FormatError("vector length " + std::to_string(count) +
                      " exceeds remaining payload");
  }
  std::vector<double> v(static_cast<std::size_t>(count));
  for (double& x : v) x = f64();
  return v;
}

std::vector<double> Reader::vec_f64_finite(std::size_t max_count) {
  std::vector<double> v = vec_f64(max_count);
  for (double x : v) {
    if (!std::isfinite(x)) {
      throw FormatError("non-finite value in serialized vector");
    }
  }
  return v;
}

std::vector<std::uint64_t> Reader::vec_u64(std::size_t max_count) {
  const std::uint64_t count = u64();
  if (count > remaining() / 8 || count > max_count) {
    throw FormatError("vector length " + std::to_string(count) +
                      " exceeds remaining payload");
  }
  std::vector<std::uint64_t> v(static_cast<std::size_t>(count));
  for (std::uint64_t& x : v) x = u64();
  return v;
}

std::uint32_t Reader::begin_section() {
  if (in_section_) {
    throw FormatError("sections do not nest");
  }
  const std::uint32_t tag = u32();
  const std::uint32_t length = u32();
  if (length > payload_end_ - pos_) {
    throw FormatError("section length " + std::to_string(length) +
                      " exceeds remaining payload");
  }
  section_end_ = pos_ + length;
  in_section_ = true;
  return tag;
}

void Reader::end_section() {
  if (!in_section_) throw FormatError("end_section outside a section");
  if (pos_ != section_end_) {
    throw FormatError("section has " + std::to_string(section_end_ - pos_) +
                      " unconsumed bytes");
  }
  in_section_ = false;
}

void Reader::skip_section() {
  if (!in_section_) throw FormatError("skip_section outside a section");
  pos_ = section_end_;
  in_section_ = false;
}

}  // namespace tdp::ser
