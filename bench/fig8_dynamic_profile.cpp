// Figure 8: traffic profile under the dynamic session model. "Traffic in
// nearly all periods is much reduced; deferred traffic from initially
// overused periods no longer carries over into subsequent periods. Residue
// spread decreases dramatically from 2623.1 GB with TIP to 1142.0 GB with
// TDP."
#include <cstdio>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "core/metrics.hpp"
#include "dynamic/dynamic_optimizer.hpp"
#include "dynamic/paper_dynamic.hpp"

int main() {
  using namespace tdp;
  bench::banner("Fig. 8", "traffic profile, dynamic session model (48p)");

  const DynamicModel model = paper::dynamic_model_48();
  const DynamicPricingSolution sol = optimize_dynamic_prices(model);
  const auto tip_eval = model.evaluate(math::Vector(48, 0.0));

  // The figure plots offered load: arrivals plus carried-over backlog.
  std::vector<double> tip_load(48, 0.0);
  std::vector<double> tdp_load(48, 0.0);
  for (std::size_t i = 0; i < 48; ++i) {
    const std::size_t prev = (i + 47) % 48;
    tip_load[i] = tip_eval.arrivals[i] + tip_eval.backlog[prev];
    tdp_load[i] = sol.evaluation.arrivals[i] + sol.evaluation.backlog[prev];
  }

  TextTable table({"Period", "TIP load (MBps)", "TDP load (MBps)",
                   "TIP backlog", "TDP backlog"});
  for (std::size_t i = 0; i < 48; ++i) {
    table.add_row({std::to_string(i + 1),
                   TextTable::num(to_mbps(tip_load[i]), 0),
                   TextTable::num(to_mbps(tdp_load[i]), 1),
                   TextTable::num(tip_eval.backlog[i], 1),
                   TextTable::num(sol.evaluation.backlog[i], 2)});
  }
  bench::print_table(table);

  const double spread_tip = residue_spread(tip_load);
  const double spread_tdp = residue_spread(tdp_load);
  std::printf("\n");
  bench::paper_vs_measured(
      "residue spread drops dramatically", "2623.1 -> 1142.0 GB (0.435)",
      TextTable::num(spread_tip, 1) + " -> " +
          TextTable::num(spread_tdp, 1) + " unit-periods (ratio " +
          TextTable::num(spread_tdp / spread_tip, 3) + ")");
  bench::paper_vs_measured(
      "dynamic TIP spread amplified vs static (923.4 -> 2623.1, 2.8x)",
      "carry-over amplifies peaks",
      "dynamic/static TIP spread = " +
          TextTable::num(spread_tip / 256.5, 2) + "x");
  double tip_backlog = 0.0;
  double tdp_backlog = 0.0;
  for (std::size_t i = 0; i < 48; ++i) {
    tip_backlog += tip_eval.backlog[i];
    tdp_backlog += sol.evaluation.backlog[i];
  }
  bench::paper_vs_measured(
      "deferred traffic no longer carries over", "backlog ~ eliminated",
      "total backlog " + TextTable::num(tip_backlog, 0) + " -> " +
          TextTable::num(tdp_backlog, 1) + " unit-periods");
  return 0;
}
