// Mechanism arena: identical seeded fleets, one per pricing mechanism,
// compared on the quantities the arena exists to rank — peak-to-average
// reduction, ISP cost, rebate budget, user welfare (DESIGN.md §13).
//
// Every mechanism runs the same FleetDriver configuration (same population
// seed, same shard/slice layout, same warmup) differing ONLY in
// FleetDriverConfig::mechanism, so metric differences are attributable to
// the pricing scheme alone. Each run is re-executed on 1 thread and
// checked bit-identical to the all-threads run (the determinism contract
// every mechanism inherits; the enforced version is tests/test_mech.cpp).
//
// Per-mechanism metrics:
//   p2a_reduction       (P2A_tip - P2A_tdp) / P2A_tip on the measured day
//   isp_cost_units      steady-state backlog cost of the *measured*
//                       realized profile (mech::profile_backlog_cost on the
//                       baseline fluid model's capacity/cost) + rewards paid
//   user_welfare_units  0.5 x rewards paid (uniform-rent approximation:
//                       a marginal deferrer keeps none of the reward, an
//                       infra-marginal one keeps almost all of it)
//   rebate_*            the daily pool and today's payout (budgeted
//                       mechanisms; zero elsewhere)
//
// The expected ordering — day_ahead_oracle >= tube_online >= flat_tip on
// p2a_reduction — is enforced by tools/check_bench_regression.py --suite
// mechanism against bench/baselines/BENCH_mechanism.baseline.json.
//
//   ./bench/bench_mechanism_arena [--out BENCH_mechanism.json]
//                                 [--users N] [--threads N]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/deferral_kernel.hpp"
#include "core/paper_data.hpp"
#include "fleet/fleet_driver.hpp"
#include "fleet/fleet_metrics.hpp"
#include "math/matrix.hpp"
#include "mech/mechanism.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

template <typename Fn>
double time_reps(std::size_t reps, Fn&& fn) {
  fn();
  const auto start = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) fn();
  return seconds_since(start);
}

void append_json_field(std::string& out, const char* key, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "\"%s\":%.17g", key, value);
  out += buffer;
}

tdp::fleet::FleetDriverConfig arena_config(std::uint64_t users,
                                           std::size_t threads,
                                           tdp::mech::MechanismKind kind) {
  tdp::fleet::FleetDriverConfig config;
  config.population.users = users;
  config.population.periods = 48;
  config.population.seed = 20110611;
  config.shards = 64;  // fixed layout: same reduction order at any threads
  config.threads = threads;
  config.warmup_days = 3;
  config.online_pricing = true;
  config.mechanism.kind = kind;
  return config;
}

bool identical_profiles(const tdp::fleet::FleetMetrics& a,
                        const tdp::fleet::FleetMetrics& b) {
  return a.offered_units == b.offered_units &&
         a.realized_units == b.realized_units && a.sessions == b.sessions &&
         a.deferred_sessions == b.deferred_sessions &&
         a.reward_paid_units == b.reward_paid_units;
}

struct ArenaRow {
  std::string name;
  tdp::fleet::FleetMetrics metrics;
  double p2a_reduction = 0.0;
  double isp_cost = 0.0;
  double welfare = 0.0;
  double run_seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace tdp;

  std::string out_path;
  std::uint64_t users = 100000;
  std::size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      users = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(
          std::strtoull(argv[++i], nullptr, 10));
    }
  }

  bench::banner("mechanism_arena",
                "pricing mechanisms on bit-identical seeded fleets");

  // Calibration: the same fixed reference workload as bench_kernel_suite /
  // bench_horizon, so all suites' baselines normalize host speed the same
  // way.
  double calibration_seconds = 0.0;
  {
    const DeferralKernel kernel(
        paper::make_profile(paper::table8_mix_12(),
                            paper::kStaticNormalizationReward,
                            LagNormalization::kDiscrete, 0.7),
        LagConvention::kPeriodStart);
    const math::Vector rewards(12, 0.8);
    double sink = 0.0;
    calibration_seconds = time_reps(50, [&] {
      for (std::size_t i = 0; i < 12; ++i) {
        sink += kernel.inflow(i, rewards[i]) + kernel.outflow(i, rewards);
      }
    });
    if (sink < 0.0) std::printf("?\n");  // keep the sink alive
  }

  const mech::MechanismKind kinds[] = {
      mech::MechanismKind::kFlatTip,
      mech::MechanismKind::kTubeOnline,
      mech::MechanismKind::kFixedBudgetRebate,
      mech::MechanismKind::kDayAheadOracle,
  };

  std::vector<ArenaRow> rows;
  for (const mech::MechanismKind kind : kinds) {
    ArenaRow row;
    row.name = mech::to_string(kind);

    bench::BenchReport report(std::string("arena_") + row.name);
    report.set_mechanism(row.name);

    const auto start = Clock::now();
    fleet::FleetDriver driver(arena_config(users, threads, kind));
    // The cost model every mechanism is judged against: the shared
    // baseline fluid model (capacity + backlog cost), NOT the mechanism's
    // own view — comparisons are on what the fleet actually did.
    const DynamicModel judge = fleet::baseline_fluid_model(driver.population());
    row.metrics = driver.run_day();
    row.run_seconds = seconds_since(start);

    {
      // Thread-count invariance: the same day on 1 thread must reproduce
      // the aggregates bitwise — for every mechanism, not just TubeOnline.
      fleet::FleetDriver serial(arena_config(users, 1, kind));
      const fleet::FleetMetrics serial_metrics = serial.run_day();
      if (!identical_profiles(row.metrics, serial_metrics)) {
        std::printf("  ERROR: %s aggregates differ across thread counts\n",
                    row.name.c_str());
        return 1;
      }
    }

    row.p2a_reduction =
        row.metrics.peak_to_average_tip > 0.0
            ? (row.metrics.peak_to_average_tip -
               row.metrics.peak_to_average_tdp) /
                  row.metrics.peak_to_average_tip
            : 0.0;
    row.isp_cost = mech::profile_backlog_cost(
                       row.metrics.realized_units, judge.capacity(),
                       judge.backlog_cost(), judge.warmup_days()) +
                   row.metrics.reward_paid_units;
    row.welfare = 0.5 * row.metrics.reward_paid_units;

    report.add("users", static_cast<std::uint64_t>(users));
    report.add("periods", static_cast<std::uint64_t>(row.metrics.periods));
    report.add("p2a_tip", row.metrics.peak_to_average_tip);
    report.add("p2a_tdp", row.metrics.peak_to_average_tdp);
    report.add("p2a_reduction", row.p2a_reduction);
    report.add("isp_cost_units", row.isp_cost);
    report.add("reward_paid_units", row.metrics.reward_paid_units);
    report.add("user_welfare_units", row.welfare);
    report.add("rebate_budget_pool", row.metrics.rebate_budget_pool);
    report.add("rebate_budget_spent", row.metrics.rebate_budget_spent);
    report.add("run_seconds", row.run_seconds);
    report.emit();
    rows.push_back(std::move(row));
  }

  TextTable table({"mechanism", "P2A tip", "P2A tdp", "reduction",
                   "ISP cost", "rewards", "pool", "welfare", "wall s"});
  for (const ArenaRow& row : rows) {
    table.add_row({row.name, TextTable::num(row.metrics.peak_to_average_tip),
                   TextTable::num(row.metrics.peak_to_average_tdp),
                   TextTable::num(row.p2a_reduction),
                   TextTable::num(row.isp_cost),
                   TextTable::num(row.metrics.reward_paid_units),
                   TextTable::num(row.metrics.rebate_budget_pool),
                   TextTable::num(row.welfare),
                   TextTable::num(row.run_seconds)});
  }
  bench::print_table(table);

  if (!out_path.empty()) {
    std::string json = "{\n  \"schema\": 1,\n  ";
    append_json_field(json, "calibration_seconds", calibration_seconds);
    json += ",\n  \"benches\": {\n";
    for (std::size_t e = 0; e < rows.size(); ++e) {
      const ArenaRow& row = rows[e];
      json += "    \"arena_" + row.name + "\": {";
      append_json_field(json, "p2a_reduction", row.p2a_reduction);
      json += ", ";
      append_json_field(json, "isp_cost_units", row.isp_cost);
      json += ", ";
      append_json_field(json, "user_welfare_units", row.welfare);
      json += ", ";
      append_json_field(json, "run_seconds", row.run_seconds);
      json += e + 1 < rows.size() ? "},\n" : "}\n";
    }
    json += "  }\n}\n";
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << json;
    std::printf("  wrote %s\n", out_path.c_str());
  }
  return 0;
}
