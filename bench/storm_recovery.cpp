// Storm-recovery bench: what a correlated fault storm costs the control
// loop, what streaming checkpoints cost the period loop, and how fast a
// crash-under-storm recovery is — emitting BENCH_JSON lines and a
// machine-readable BENCH_storm.json for the CI perf gate
// (tools/check_bench_regression.py --suite storm).
//
//   storm_week        the multi-day loop under a 20%-duty storm plan
//                     (blackout + channel + solver regimes) vs the same
//                     fleet with the storms off: p2a_retention is the
//                     peak-to-average reduction the pricer keeps while the
//                     weather is bad (gated >= --min-p2a-retention)
//   stream_overhead   the same storm run with streaming v2 checkpoints on
//                     (atomic tmp/rename commit every --every periods):
//                     stream_overhead_fraction = on/off - 1 is gated
//                     <= --max-stream-overhead
//   storm_recovery    kill the streamed run mid-storm, recover from the
//                     committed file (torn-write-tolerant loader), restore
//                     onto a different shard count, and finish: the
//                     resumed days must be bitwise identical to the
//                     uninterrupted run's (a mismatch fails the bench) and
//                     recovery_wall_seconds is gated against the baseline
//
// Absolute times are normalized by calibration_seconds (the same fixed
// reference workload as bench_kernel_suite, timed in this process) before
// baseline comparison, so the regression gate measures code changes rather
// than host-speed changes.
//
//   ./bench/bench_storm_recovery [--out BENCH_storm.json] [--users N]
//                                [--days N] [--every K]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/deferral_kernel.hpp"
#include "core/paper_data.hpp"
#include "horizon/checkpoint.hpp"
#include "horizon/checkpoint_stream.hpp"
#include "horizon/multi_day_driver.hpp"
#include "math/matrix.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

template <typename Fn>
double time_reps(std::size_t reps, Fn&& fn) {
  fn();
  const auto start = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) fn();
  return seconds_since(start);
}

void append_json_field(std::string& out, const char* key, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "\"%s\":%.17g", key, value);
  out += buffer;
}

struct BenchEntry {
  std::string name;
  std::vector<std::pair<std::string, double>> fields;
};

/// The 20%-duty storm plan the acceptance criteria are written against:
/// onset 0.06, persist 0.76 -> duty 0.06/(0.06+0.24) = 0.2, mean burst
/// ~4.2 periods.
tdp::StormRegime twenty_duty(double intensity) {
  tdp::StormRegime regime;
  regime.onset = 0.06;
  regime.persist = 0.76;
  regime.intensity = intensity;
  return regime;
}

tdp::horizon::HorizonConfig storm_config(std::uint64_t users,
                                         std::size_t days, bool storms) {
  tdp::horizon::HorizonConfig config;
  config.population.users = users;
  config.population.periods = 48;
  config.population.seed = 20110611;
  config.shards = 32;
  config.warmup_days = 1;
  config.horizon_days = days;
  config.estimation_window = 4;
  config.estimation_min_days = 2;
  config.estimation_starts = 2;
  // Mild i.i.d. chaos under the storms, like the horizon bench.
  config.fault.price_pull_drop = 0.02;
  config.fault.measurement_loss = 0.02;
  config.fault.seed = 424242;
  if (storms) {
    config.fault.storm_blackout = twenty_duty(1.0);
    config.fault.storm_channel = twenty_duty(0.5);
    config.fault.storm_solver = twenty_duty(1.0);
  }
  return config;
}

double mean_p2a_reduction(const std::vector<tdp::horizon::DayMetrics>& days,
                          std::size_t warmup_days) {
  double total = 0.0;
  std::size_t counted = 0;
  for (const tdp::horizon::DayMetrics& d : days) {
    if (d.day < warmup_days || d.peak_to_average_tip <= 0.0) continue;
    total += (d.peak_to_average_tip - d.peak_to_average_tdp) /
             d.peak_to_average_tip;
    ++counted;
  }
  return counted ? total / static_cast<double>(counted) : 0.0;
}

bool days_bitwise_equal(const std::vector<tdp::horizon::DayMetrics>& a,
                        const std::vector<tdp::horizon::DayMetrics>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t d = 0; d < a.size(); ++d) {
    if (a[d].rewards != b[d].rewards) return false;
    if (a[d].offered_units != b[d].offered_units) return false;
    if (a[d].realized_units != b[d].realized_units) return false;
    if (a[d].sessions != b[d].sessions) return false;
    if (a[d].deferred_sessions != b[d].deferred_sessions) return false;
    if (a[d].beta_estimate != b[d].beta_estimate) return false;
    if (a[d].fallback_periods != b[d].fallback_periods) return false;
  }
  return true;
}

double run_wall(const tdp::horizon::HorizonConfig& config,
                std::vector<tdp::horizon::DayMetrics>* days_out = nullptr) {
  tdp::horizon::MultiDayDriver driver(config);
  const auto start = Clock::now();
  while (!driver.done()) driver.step_period();
  const double wall = seconds_since(start);
  if (days_out != nullptr) *days_out = driver.completed_days();
  return wall;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tdp;

  std::string out_path;
  std::uint64_t users = 20000;
  std::size_t days = 4;
  std::size_t every = 8;  // streamed commit cadence in periods
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      users = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      days = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--every") == 0 && i + 1 < argc) {
      every = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    }
  }

  bench::banner("storm_recovery",
                "storm-mode P2A retention + streaming checkpoint overhead "
                "+ crash-under-storm recovery");

  std::vector<BenchEntry> entries;

  // Calibration: the same fixed reference workload as bench_kernel_suite,
  // so both suites' baselines normalize host speed identically.
  double calibration_seconds = 0.0;
  {
    const DeferralKernel kernel(
        paper::make_profile(paper::table8_mix_12(),
                            paper::kStaticNormalizationReward,
                            LagNormalization::kDiscrete, 0.7),
        LagConvention::kPeriodStart);
    const math::Vector rewards(12, 0.8);
    double sink = 0.0;
    calibration_seconds = time_reps(50, [&] {
      for (std::size_t i = 0; i < 12; ++i) {
        sink += kernel.inflow(i, rewards[i]) + kernel.outflow(i, rewards);
      }
    });
    if (sink < 0.0) std::printf("?\n");  // keep the sink alive
  }

  const horizon::HorizonConfig calm = storm_config(users, days, false);
  const horizon::HorizonConfig stormy = storm_config(users, days, true);
  const std::size_t total_steps =
      (stormy.warmup_days + stormy.horizon_days) * stormy.population.periods;

  // ---- storm_week: P2A retention under the 20%-duty storm -----------------
  std::vector<horizon::DayMetrics> storm_days;
  double storm_wall = 0.0;
  {
    bench::BenchReport report("storm_week");
    std::vector<horizon::DayMetrics> calm_days;
    const double calm_wall = run_wall(calm, &calm_days);
    storm_wall = run_wall(stormy, &storm_days);

    const double calm_reduction =
        mean_p2a_reduction(calm_days, calm.warmup_days);
    const double storm_reduction =
        mean_p2a_reduction(storm_days, stormy.warmup_days);
    const double retention =
        calm_reduction > 0.0 ? storm_reduction / calm_reduction : 0.0;

    report.add("users", static_cast<std::uint64_t>(users));
    report.add("days", static_cast<std::uint64_t>(days));
    report.add("calm_wall_seconds", calm_wall);
    report.add("calm_p2a_reduction", calm_reduction);
    report.add("storm_p2a_reduction", storm_reduction);
    report.add("p2a_retention", retention);
    report.add("storm_wall_seconds", storm_wall);
    report.emit();
    entries.push_back({"storm_week",
                       {{"calm_wall_seconds", calm_wall},
                        {"calm_p2a_reduction", calm_reduction},
                        {"storm_p2a_reduction", storm_reduction},
                        {"p2a_retention", retention},
                        {"storm_wall_seconds", storm_wall}}});
    std::printf("  storm_week         p2a reduction %.3f calm -> %.3f storm "
                "(retention %.3f), %.3f s\n",
                calm_reduction, storm_reduction, retention, storm_wall);
  }

  // ---- stream_overhead: streamed v2 commits vs no checkpointing -----------
  const std::string ck_path = "BENCH_storm_ck.bin";
  {
    bench::BenchReport report("stream_overhead");
    horizon::HorizonConfig streaming = stormy;
    streaming.checkpoint_path = ck_path;
    streaming.checkpoint_every_periods = every;

    horizon::MultiDayDriver driver(streaming);
    const auto start = Clock::now();
    while (!driver.done()) driver.step_period();
    const double streamed_wall = seconds_since(start);
    const double overhead =
        storm_wall > 0.0 ? streamed_wall / storm_wall - 1.0 : 0.0;

    report.add("commit_every_periods", static_cast<std::uint64_t>(every));
    report.add("streamed_wall_seconds", streamed_wall);
    report.add("stream_overhead_fraction", overhead);
    report.emit();
    entries.push_back({"stream_overhead",
                       {{"streamed_wall_seconds", streamed_wall},
                        {"stream_overhead_fraction", overhead}}});
    std::printf("  stream_overhead    %.3f s streamed vs %.3f s bare "
                "(%.1f%% overhead, commit every %zu periods)\n",
                streamed_wall, storm_wall, 1e2 * overhead, every);
  }

  // ---- storm_recovery: kill mid-storm, recover, resume, verify ------------
  {
    bench::BenchReport report("storm_recovery");
    horizon::HorizonConfig streaming = stormy;
    streaming.checkpoint_path = ck_path;
    streaming.checkpoint_every_periods = every;
    const std::size_t kill_step = (total_steps * 3) / 5;
    {
      horizon::MultiDayDriver victim(streaming);
      for (std::size_t step = 0; step < kill_step; ++step) {
        victim.step_period();
      }
      // The victim dies here; only the streamed file survives.
    }

    horizon::HorizonConfig resume = stormy;  // no streaming on the resume
    resume.shards = 16;                      // recover onto a new layout
    const auto recover_start = Clock::now();
    const horizon::CheckpointData recovered =
        horizon::load_checkpoint_file_recover(ck_path);
    std::unique_ptr<horizon::MultiDayDriver> restored =
        horizon::MultiDayDriver::restore(resume, recovered);
    const double recovery_wall = seconds_since(recover_start);

    const auto resume_start = Clock::now();
    while (!restored->done()) restored->step_period();
    const double resume_wall = seconds_since(resume_start);

    if (!days_bitwise_equal(storm_days, restored->completed_days())) {
      std::printf("  ERROR: resumed storm run diverged from the "
                  "uninterrupted run (kill step %zu)\n",
                  kill_step);
      return 1;
    }

    report.add("kill_step", static_cast<std::uint64_t>(kill_step));
    report.add("recovery_wall_seconds", recovery_wall);
    report.add("resume_wall_seconds", resume_wall);
    report.emit();
    entries.push_back({"storm_recovery",
                       {{"recovery_wall_seconds", recovery_wall},
                        {"resume_wall_seconds", resume_wall}}});
    std::printf("  storm_recovery     recovered + restored in %.3f s, "
                "resumed %zu steps in %.3f s, bit-identical: yes\n",
                recovery_wall, total_steps - kill_step, resume_wall);
  }
  std::remove(ck_path.c_str());
  std::remove((ck_path + ".tmp").c_str());

  // ---- BENCH_storm.json ---------------------------------------------------
  if (!out_path.empty()) {
    std::string json = "{\n  \"schema\": 1,\n  ";
    append_json_field(json, "calibration_seconds", calibration_seconds);
    json += ",\n  \"benches\": {\n";
    for (std::size_t e = 0; e < entries.size(); ++e) {
      json += "    \"" + entries[e].name + "\": {";
      for (std::size_t f = 0; f < entries[e].fields.size(); ++f) {
        if (f) json += ", ";
        append_json_field(json, entries[e].fields[f].first.c_str(),
                          entries[e].fields[f].second);
      }
      json += e + 1 < entries.size() ? "},\n" : "}\n";
    }
    json += "  }\n}\n";
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << json;
    std::printf("  wrote %s\n", out_path.c_str());
  }
  return 0;
}
