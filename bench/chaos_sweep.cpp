// Chaos sweep: the fleet day under increasing fault rates, measuring how
// gracefully the control loop degrades.
//
// For each fault rate the same population is simulated with a plan that
// drops price pulls, loses/corrupts measurements and starves the solver at
// that rate. Faults only touch what the control loop *observes* — the
// physical fleet is identical across cells — so peak-to-average drift vs
// the clean run isolates the cost of degraded control. Each cell emits a
// BENCH_JSON line with the traffic shape, the degradation vs clean, and
// the pricer's health/recovery counters.
//
// Invariants checked here (both fatal when violated):
//   - the zero-rate cell is bit-identical to a driver with no fault plan;
//   - at a 5% fault rate the peak-to-average ratio stays within 10% of the
//     clean run's value (the control loop rides through, it doesn't fall
//     over).
//
//   ./bench/bench_chaos_sweep            # 20k users, rates 0/1%/5%/20%
//   ./bench/bench_chaos_sweep 50000      # custom fleet size
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/fault.hpp"
#include "fleet/fleet_driver.hpp"
#include "fleet/fleet_metrics.hpp"

namespace {

tdp::FaultPlan plan_for_rate(double rate) {
  tdp::FaultPlan plan;
  plan.price_pull_drop = rate;
  plan.measurement_loss = rate / 2.0;
  plan.measurement_nan = rate / 4.0;
  plan.measurement_spike = rate / 4.0;
  plan.solver_exhaustion = rate;
  return plan;
}

tdp::fleet::FleetMetrics run_fleet(std::uint64_t users,
                                   const tdp::FaultPlan& plan) {
  tdp::fleet::FleetDriverConfig config;
  config.population.users = users;
  config.population.periods = 48;
  config.shards = 64;
  config.warmup_days = 1;
  config.online_pricing = true;
  config.fault = plan;
  tdp::fleet::FleetDriver driver(config);
  return driver.run_day();
}

bool identical_profiles(const tdp::fleet::FleetMetrics& a,
                        const tdp::fleet::FleetMetrics& b) {
  return a.offered_units == b.offered_units &&
         a.realized_units == b.realized_units &&
         a.sessions == b.sessions &&
         a.deferred_sessions == b.deferred_sessions &&
         a.reward_paid_units == b.reward_paid_units;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tdp;

  std::uint64_t users = 20000;
  if (argc > 1) users = std::strtoull(argv[1], nullptr, 10);
  const std::vector<double> rates = {0.0, 0.01, 0.05, 0.20};

  bench::banner("chaos_sweep",
                "fleet day under injected faults, degradation vs clean");

  const fleet::FleetMetrics clean = run_fleet(users, FaultPlan{});
  std::printf("  clean run: P2A %.4f -> %.4f, reward paid %.1f units\n",
              clean.peak_to_average_tip, clean.peak_to_average_tdp,
              clean.reward_paid_units);

  bool ok = true;
  for (double rate : rates) {
    bench::BenchReport report("chaos_sweep");
    const fleet::FleetMetrics metrics = run_fleet(users, plan_for_rate(rate));

    const double p2a_drift =
        clean.peak_to_average_tdp > 0.0
            ? (metrics.peak_to_average_tdp - clean.peak_to_average_tdp) /
                  clean.peak_to_average_tdp
            : 0.0;
    const double reward_drift =
        clean.reward_paid_units > 0.0
            ? (metrics.reward_paid_units - clean.reward_paid_units) /
                  clean.reward_paid_units
            : 0.0;

    report.add("users", static_cast<std::uint64_t>(metrics.users));
    report.add("fault_rate", rate);
    report.add("sessions", metrics.sessions);
    report.add("deferred_sessions", metrics.deferred_sessions);
    report.add("peak_to_average_tip", metrics.peak_to_average_tip);
    report.add("peak_to_average_tdp", metrics.peak_to_average_tdp);
    report.add("p2a_drift_vs_clean", p2a_drift);
    report.add("reward_paid_units", metrics.reward_paid_units);
    report.add("reward_drift_vs_clean", reward_drift);
    report.add("pricer_expected_cost", metrics.pricer_expected_cost);
    report.add("price_pull_drops",
               static_cast<std::uint64_t>(metrics.price_pull_drops));
    report.add("price_stale_periods",
               static_cast<std::uint64_t>(metrics.price_stale_periods));
    report.add("price_fallback_periods",
               static_cast<std::uint64_t>(metrics.price_fallback_periods));
    report.add("shard_stripes_lost",
               static_cast<std::uint64_t>(metrics.shard_stripes_lost));
    report.add("measurement_gaps",
               static_cast<std::uint64_t>(metrics.measurement_gaps));
    report.add("measurement_repairs",
               static_cast<std::uint64_t>(metrics.measurement_repairs));
    report.add("solver_failures", metrics.solver_failures);
    report.add("reward_clamps", metrics.reward_clamps);
    report.add("skipped_updates", metrics.skipped_updates);
    report.add("health_transitions", metrics.health_transitions);
    report.add("degraded_observations", metrics.degraded_observations);
    report.add("fallback_observations", metrics.fallback_observations);
    report.add("pricer_recoveries", metrics.pricer_recoveries);
    report.add("max_recovery_periods", metrics.max_recovery_periods);
    report.add("final_health", metrics.final_health);
    report.emit();

    std::printf(
        "  rate %5.1f%%: P2A %.4f (%+.2f%% vs clean), %llu degraded obs, "
        "%llu clamps, %llu skipped, recovery <= %llu periods, health %s\n",
        rate * 100.0, metrics.peak_to_average_tdp, p2a_drift * 100.0,
        static_cast<unsigned long long>(metrics.degraded_observations),
        static_cast<unsigned long long>(metrics.reward_clamps),
        static_cast<unsigned long long>(metrics.skipped_updates),
        static_cast<unsigned long long>(metrics.max_recovery_periods),
        metrics.final_health.c_str());

    if (rate == 0.0 && !identical_profiles(clean, metrics)) {
      std::printf("  ERROR: zero-fault plan diverged from the clean run\n");
      ok = false;
    }
    if (rate == 0.05 && std::fabs(p2a_drift) > 0.10) {
      std::printf("  ERROR: 5%% fault rate moved P2A by more than 10%%\n");
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
