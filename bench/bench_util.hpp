// Shared helpers for the table/figure regeneration benches.
#pragma once

#include <cstdio>
#include <string>

#include "common/table.hpp"
#include "core/batch_solver.hpp"

namespace tdp::bench {

inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void paper_vs_measured(const std::string& what,
                              const std::string& paper,
                              const std::string& measured) {
  std::printf("  %-46s paper: %-14s ours: %s\n", what.c_str(), paper.c_str(),
              measured.c_str());
}

inline void print_table(const TextTable& table) {
  std::printf("%s", table.to_string().c_str());
}

inline void report_batch(const BatchTiming& timing) {
  std::printf("  [batch] %zu solves on %zu threads: %.3f s wall, "
              "%zu FISTA iterations (%zu in the anchor)\n",
              timing.tasks, timing.threads, timing.wall_seconds,
              timing.total_iterations, timing.anchor_iterations);
}

}  // namespace tdp::bench
