// Shared helpers for the table/figure regeneration benches.
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/simd.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/batch_solver.hpp"

// Short commit SHA baked in by bench/CMakeLists.txt so every BENCH_JSON
// line is traceable to the tree that produced it.
#ifndef TDP_GIT_SHA
#define TDP_GIT_SHA "unknown"
#endif

namespace tdp::bench {

inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void paper_vs_measured(const std::string& what,
                              const std::string& paper,
                              const std::string& measured) {
  std::printf("  %-46s paper: %-14s ours: %s\n", what.c_str(), paper.c_str(),
              measured.c_str());
}

inline void print_table(const TextTable& table) {
  std::printf("%s", table.to_string().c_str());
}

inline void report_batch(const BatchTiming& timing) {
  std::printf("  [batch] %zu solves on %zu threads: %.3f s wall, "
              "%zu FISTA iterations (%zu in the anchor)\n",
              timing.tasks, timing.threads, timing.wall_seconds,
              timing.total_iterations, timing.anchor_iterations);
}

/// High-water-mark resident set size of this process, in MiB.
inline double peak_rss_mb() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  // Linux reports ru_maxrss in KiB.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
}

/// One machine-readable result line per bench run. Collects custom fields
/// and emits a single `BENCH_JSON {...}` line; `wall_seconds` (construction
/// to emit) and `peak_rss_mb` are always appended, so every bench JSON in
/// the trajectory exposes time *and* memory and regressions in either are
/// visible from the logs alone.
class BenchReport {
 public:
  explicit BenchReport(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  ~BenchReport() {
    if (!emitted_) emit();
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  void add(const std::string& key, double value) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    fields_.emplace_back(key, buffer);
  }

  void add(const std::string& key, std::uint64_t value) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%llu",
                  static_cast<unsigned long long>(value));
    fields_.emplace_back(key, buffer);
  }

  void add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, '"' + value + '"');
  }

  /// Embed a pre-serialized JSON value (array or object) verbatim.
  void add_raw(const std::string& key, const std::string& json) {
    fields_.emplace_back(key, json);
  }

  /// The pricing mechanism this bench ran under ("none" when the bench has
  /// no mechanism axis). Always emitted so arena results sort by regime.
  void set_mechanism(std::string name) { mechanism_ = std::move(name); }

  /// Worker threads this bench actually ran on. Defaults to the hardware
  /// count; benches that sweep a thread axis set it per cell so the
  /// provenance fields describe the measurement, not the host.
  void set_threads_used(std::size_t threads) { threads_used_ = threads; }

  void emit() {
    emitted_ = true;
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
    std::string line = "BENCH_JSON {\"bench\":\"" + name_ + '"';
    for (const auto& [key, value] : fields_) {
      line += ",\"" + key + "\":" + value;
    }
    line += ",\"mechanism\":\"" + mechanism_ + "\"";
    // Measurement provenance: what the host can do (host_isa), what the
    // dispatcher actually used (simd_mode), and the threading layout —
    // so any two BENCH_JSON lines are comparable, or visibly not.
    line += ",\"host_isa\":\"" + std::string(simd::host_isa()) + "\"";
    line += ",\"simd_mode\":\"" + std::string(simd::mode_name()) + "\"";
    line += ",\"threads_used\":" + std::to_string(threads_used_);
    line += ",\"pinned\":";
    line += pin_threads() ? "true" : "false";
    line += ",\"git_sha\":\"" TDP_GIT_SHA "\"";
    char buffer[64];
    std::snprintf(buffer, sizeof buffer,
                  ",\"wall_seconds\":%.6f,\"peak_rss_mb\":%.3f}", wall,
                  peak_rss_mb());
    line += buffer;
    std::printf("%s\n", line.c_str());
  }

 private:
  std::string name_;
  std::string mechanism_ = "none";
  std::size_t threads_used_ = hardware_threads();
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, std::string>> fields_;
  bool emitted_ = false;
};

}  // namespace tdp::bench
