// Tables XIV and XVI: robustness of the static model to waiting-function
// mis-estimation. Period-1 perturbation (Table XIII) barely changes the
// rewards; all-period perturbation (Table XV) changes them slightly, with
// a negligible cost effect ($3.04 -> $3.03 in the paper's run).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/paper_data.hpp"
#include "core/static_optimizer.hpp"

int main() {
  using namespace tdp;
  bench::banner("Tables XIV / XVI", "waiting-function mis-estimation");

  const StaticModel true_model = paper::static_model_12();
  const PricingSolution nominal = optimize_static_prices(true_model);

  // Table XIV: the ISP mis-estimates period 1's mix only.
  const StaticModel p1_model = paper::static_model_12_with_period1(
      paper::table13_period1_mix());
  const PricingSolution p1 = optimize_static_prices(p1_model);

  // Table XVI: the ISP mis-estimates every period's mix.
  const StaticModel all_model =
      paper::static_model_12_with_mix(paper::table15_mix_12());
  const PricingSolution all = optimize_static_prices(all_model);

  TextTable table({"Period", "Nominal ($0.10)", "P1-perturbed (XIV)",
                   "All-perturbed (XVI)"});
  for (std::size_t i = 0; i < 12; ++i) {
    table.add_row({std::to_string(i + 1),
                   TextTable::num(nominal.rewards[i], 2),
                   TextTable::num(p1.rewards[i], 2),
                   TextTable::num(all.rewards[i], 2)});
  }
  bench::print_table(table);

  double p1_change = 0.0;
  double all_change = 0.0;
  for (std::size_t i = 0; i < 12; ++i) {
    p1_change += std::abs(p1.rewards[i] - nominal.rewards[i]);
    all_change += std::abs(all.rewards[i] - nominal.rewards[i]);
  }

  // Paper's robustness claim: the TRUE cost of using the mis-estimated
  // rewards barely exceeds the true optimum.
  const double true_cost_optimal = true_model.total_cost(nominal.rewards);
  const double true_cost_p1 = true_model.total_cost(p1.rewards);
  const double true_cost_all = true_model.total_cost(all.rewards);

  std::printf("\n");
  bench::paper_vs_measured("period-1 perturbation: rewards barely change",
                           "'Rewards barely change'",
                           "total change " + TextTable::num(p1_change, 3));
  bench::paper_vs_measured(
      "all-period perturbation: small differences",
      "cost $3.04 -> $3.03",
      "total change " + TextTable::num(all_change, 3));
  bench::paper_vs_measured(
      "true cost using mis-estimated rewards (P1 / all)",
      "robust",
      TextTable::num(true_cost_optimal, 2) + " vs " +
          TextTable::num(true_cost_p1, 2) + " / " +
          TextTable::num(true_cost_all, 2) + " money units (" +
          TextTable::num(100.0 * (true_cost_all - true_cost_optimal) /
                             true_cost_optimal,
                         2) +
          "% penalty)");
  bench::paper_vs_measured(
      "under-capacity periods' w changes have no effect",
      "'no effect on optimal prices'",
      "see identical leading rewards above");
  return 0;
}
