// Micro-benchmarks for the paper's runtime claims and the library's hot
// paths (google-benchmark).
//
// Paper claims: static optimization "under 10 seconds on a standard
// laptop"; online price determination (12 periods, 10 types) "in less than
// 5 seconds"; waiting-function estimation (3 periods, 2 types) "in under 25
// seconds".
#include <benchmark/benchmark.h>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "core/paper_data.hpp"
#include "core/static_optimizer.hpp"
#include "dynamic/dynamic_optimizer.hpp"
#include "dynamic/online_pricer.hpp"
#include "dynamic/paper_dynamic.hpp"
#include "dynamic/stochastic_sim.hpp"
#include "estimation/wf_estimator.hpp"
#include "tube/tube_system.hpp"

namespace {

using namespace tdp;

void BM_StaticOptimize48(benchmark::State& state) {
  const StaticModel model = paper::static_model_48();
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_static_prices(model));
  }
}
BENCHMARK(BM_StaticOptimize48)->Unit(benchmark::kMillisecond);

void BM_StaticOptimize12(benchmark::State& state) {
  const StaticModel model = paper::static_model_12();
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_static_prices(model));
  }
}
BENCHMARK(BM_StaticOptimize12)->Unit(benchmark::kMillisecond);

void BM_StaticCostEvaluation(benchmark::State& state) {
  const StaticModel model = paper::static_model_48();
  const math::Vector rewards(48, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.total_cost(rewards));
  }
}
BENCHMARK(BM_StaticCostEvaluation);

void BM_StaticGradient(benchmark::State& state) {
  const StaticModel model = paper::static_model_48();
  const math::Vector rewards(48, 0.5);
  math::Vector grad(48, 0.0);
  for (auto _ : state) {
    model.smoothed_gradient(rewards, 1e-3, grad);
    benchmark::DoNotOptimize(grad.data());
  }
}
BENCHMARK(BM_StaticGradient);

void BM_DynamicOptimize48(benchmark::State& state) {
  const DynamicModel model = paper::dynamic_model_48();
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_dynamic_prices(model));
  }
}
BENCHMARK(BM_DynamicOptimize48)->Unit(benchmark::kMillisecond);

void BM_OnlinePriceStep(benchmark::State& state) {
  // The paper's "online price determination completed in < 5 s" step.
  OnlinePricer pricer(paper::dynamic_model_48());
  std::size_t period = 0;
  for (auto _ : state) {
    const double forecast = pricer.model().arrivals().tip_demand(period);
    benchmark::DoNotOptimize(pricer.observe_period(period, forecast));
    period = (period + 1) % 48;
  }
}
BENCHMARK(BM_OnlinePriceStep)->Unit(benchmark::kMillisecond);

void BM_WaitingFunctionEstimation(benchmark::State& state) {
  // The paper's "< 25 s" case: 3 periods, 2 types.
  PatienceMix truth(3, 2, 1.0);
  truth.set(0, 0, 0.17, 1.0);
  truth.set(0, 1, 0.83, 2.0);
  truth.set(1, 0, 0.50, 1.0);
  truth.set(1, 1, 0.50, 2.33);
  truth.set(2, 0, 0.83, 1.0);
  truth.set(2, 1, 0.17, 2.67);
  const std::vector<double> demand = {22.0, 13.0, 8.0};
  const WaitingFunctionEstimator estimator(3, 2, 1.0);
  Rng rng(2011);
  std::vector<EstimationDataset> data;
  for (int d = 0; d < 60; ++d) {
    math::Vector rewards(3);
    for (double& p : rewards) p = rng.uniform(0.0, 1.0);
    data.push_back(estimator.synthesize(truth, demand, rewards));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate_reduced3(demand, data));
  }
}
BENCHMARK(BM_WaitingFunctionEstimation)->Unit(benchmark::kMillisecond);

void BM_StochasticDay48(benchmark::State& state) {
  const DynamicModel model = paper::dynamic_model_48();
  const math::Vector rewards(48, 0.2);
  StochasticSimOptions options;
  options.days = 1;
  options.warmup_days = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_stochastic(model, rewards, options));
  }
}
BENCHMARK(BM_StochasticDay48)->Unit(benchmark::kMillisecond);

void BM_TubeHourTip(benchmark::State& state) {
  set_log_level(LogLevel::kOff);
  for (auto _ : state) {
    TubeSystem tube;
    benchmark::DoNotOptimize(tube.run_tip(1));
  }
}
BENCHMARK(BM_TubeHourTip)->Unit(benchmark::kMillisecond);

void BM_DeferralKernelBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<paper::MixRow> mix(n, paper::table8_mix_12()[0]);
  for (auto _ : state) {
    DemandProfile profile = paper::make_profile(mix, 1.5);
    benchmark::DoNotOptimize(
        DeferralKernel(profile, LagConvention::kPeriodStart));
  }
}
BENCHMARK(BM_DeferralKernelBuild)->Arg(12)->Arg(48)->Arg(96);

}  // namespace
