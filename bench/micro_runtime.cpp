// Micro-benchmarks for the paper's runtime claims and the library's hot
// paths (google-benchmark).
//
// Paper claims: static optimization "under 10 seconds on a standard
// laptop"; online price determination (12 periods, 10 types) "in less than
// 5 seconds"; waiting-function estimation (3 periods, 2 types) "in under 25
// seconds".
//
// Run with --benchmark_out=BENCH_micro.json --benchmark_out_format=json to
// persist the numbers; the batch benchmarks attach per-batch counters
// (tasks, threads, FISTA iterations, speedup-relevant wall time) that land
// in that JSON.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/batch_solver.hpp"
#include "core/paper_data.hpp"
#include "core/static_optimizer.hpp"
#include "dynamic/dynamic_optimizer.hpp"
#include "dynamic/online_pricer.hpp"
#include "dynamic/paper_dynamic.hpp"
#include "dynamic/stochastic_sim.hpp"
#include "estimation/wf_estimator.hpp"
#include "tube/tube_system.hpp"

namespace {

using namespace tdp;

void BM_StaticOptimize48(benchmark::State& state) {
  const StaticModel model = paper::static_model_48();
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_static_prices(model));
  }
}
BENCHMARK(BM_StaticOptimize48)->Unit(benchmark::kMillisecond);

void BM_StaticOptimize12(benchmark::State& state) {
  const StaticModel model = paper::static_model_12();
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_static_prices(model));
  }
}
BENCHMARK(BM_StaticOptimize12)->Unit(benchmark::kMillisecond);

void BM_StaticCostEvaluation(benchmark::State& state) {
  const StaticModel model = paper::static_model_48();
  const math::Vector rewards(48, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.total_cost(rewards));
  }
}
BENCHMARK(BM_StaticCostEvaluation);

void BM_StaticGradient(benchmark::State& state) {
  const StaticModel model = paper::static_model_48();
  const math::Vector rewards(48, 0.5);
  math::Vector grad(48, 0.0);
  for (auto _ : state) {
    model.smoothed_gradient(rewards, 1e-3, grad);
    benchmark::DoNotOptimize(grad.data());
  }
}
BENCHMARK(BM_StaticGradient);

void BM_DynamicOptimize48(benchmark::State& state) {
  const DynamicModel model = paper::dynamic_model_48();
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_dynamic_prices(model));
  }
}
BENCHMARK(BM_DynamicOptimize48)->Unit(benchmark::kMillisecond);

void BM_OnlinePriceStep(benchmark::State& state) {
  // The paper's "online price determination completed in < 5 s" step.
  OnlinePricer pricer(paper::dynamic_model_48());
  std::size_t period = 0;
  for (auto _ : state) {
    const double forecast = pricer.model().arrivals().tip_demand(period);
    benchmark::DoNotOptimize(pricer.observe_period(period, forecast));
    period = (period + 1) % 48;
  }
}
BENCHMARK(BM_OnlinePriceStep)->Unit(benchmark::kMillisecond);

void BM_WaitingFunctionEstimation(benchmark::State& state) {
  // The paper's "< 25 s" case: 3 periods, 2 types.
  PatienceMix truth(3, 2, 1.0);
  truth.set(0, 0, 0.17, 1.0);
  truth.set(0, 1, 0.83, 2.0);
  truth.set(1, 0, 0.50, 1.0);
  truth.set(1, 1, 0.50, 2.33);
  truth.set(2, 0, 0.83, 1.0);
  truth.set(2, 1, 0.17, 2.67);
  const std::vector<double> demand = {22.0, 13.0, 8.0};
  const WaitingFunctionEstimator estimator(3, 2, 1.0);
  Rng rng(2011);
  std::vector<EstimationDataset> data;
  for (int d = 0; d < 60; ++d) {
    math::Vector rewards(3);
    for (double& p : rewards) p = rng.uniform(0.0, 1.0);
    data.push_back(estimator.synthesize(truth, demand, rewards));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate_reduced3(demand, data));
  }
}
BENCHMARK(BM_WaitingFunctionEstimation)->Unit(benchmark::kMillisecond);

void BM_StochasticDay48(benchmark::State& state) {
  const DynamicModel model = paper::dynamic_model_48();
  const math::Vector rewards(48, 0.2);
  StochasticSimOptions options;
  options.days = 1;
  options.warmup_days = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_stochastic(model, rewards, options));
  }
}
BENCHMARK(BM_StochasticDay48)->Unit(benchmark::kMillisecond);

void BM_TubeHourTip(benchmark::State& state) {
  set_log_level(LogLevel::kOff);
  for (auto _ : state) {
    TubeSystem tube;
    benchmark::DoNotOptimize(tube.run_tip(1));
  }
}
BENCHMARK(BM_TubeHourTip)->Unit(benchmark::kMillisecond);

void BM_DeferralKernelBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<paper::MixRow> mix(n, paper::table8_mix_12()[0]);
  for (auto _ : state) {
    DemandProfile profile = paper::make_profile(mix, 1.5);
    benchmark::DoNotOptimize(
        DeferralKernel(profile, LagConvention::kPeriodStart));
  }
}
BENCHMARK(BM_DeferralKernelBuild)->Arg(12)->Arg(48)->Arg(96);

void BM_BatchSolvePerturbations12(benchmark::State& state) {
  // Table VI's workload shape: the 12-period baseline plus nine demand
  // perturbations, batched. Arg = thread count (1 vs hardware gives the
  // parallel speedup; outputs are bit-identical either way).
  BatchSolveOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  BatchSolver solver(options);
  BatchTiming timing;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.solve_generated(10, [](std::size_t task) -> StaticModel {
          if (task == 0) return paper::static_model_12();
          const int units = 18 + static_cast<int>(task) - 1;
          return paper::static_model_12_with_period1(
              paper::table11_period1_mix(units));
        }));
    timing = solver.last_timing();
  }
  state.counters["tasks"] = static_cast<double>(timing.tasks);
  state.counters["threads"] = static_cast<double>(timing.threads);
  state.counters["fista_iters"] =
      static_cast<double>(timing.total_iterations);
  state.counters["anchor_iters"] =
      static_cast<double>(timing.anchor_iterations);
  state.counters["batch_wall_s"] = timing.wall_seconds;
}
BENCHMARK(BM_BatchSolvePerturbations12)
    ->Arg(1)
    ->Arg(static_cast<long>(hardware_threads()))
    ->Unit(benchmark::kMillisecond);

void BM_BatchSolveCostSweep48(benchmark::State& state) {
  // Fig. 6's workload shape: nine capacity-cost scales of the 48-period
  // model. Models are built once; only the solves are timed.
  const auto base_cost = math::PiecewiseLinearCost::hinge(3.0);
  std::vector<StaticModel> models;
  for (double log_a = -2.0; log_a <= 2.01; log_a += 0.5) {
    models.emplace_back(
        paper::make_profile(paper::table7_mix_48(),
                            paper::kStaticNormalizationReward),
        paper::kStaticCapacityUnits,
        base_cost.scaled(std::pow(10.0, log_a)));
  }
  BatchSolveOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  BatchSolver solver(options);
  BatchTiming timing;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(models));
    timing = solver.last_timing();
  }
  state.counters["tasks"] = static_cast<double>(timing.tasks);
  state.counters["threads"] = static_cast<double>(timing.threads);
  state.counters["fista_iters"] =
      static_cast<double>(timing.total_iterations);
  state.counters["anchor_iters"] =
      static_cast<double>(timing.anchor_iterations);
  state.counters["batch_wall_s"] = timing.wall_seconds;
}
BENCHMARK(BM_BatchSolveCostSweep48)
    ->Arg(1)
    ->Arg(static_cast<long>(hardware_threads()))
    ->Unit(benchmark::kMillisecond);

void BM_MultiStartEstimation(benchmark::State& state) {
  // Parallel multi-start LM over the Table III setup. Arg = thread count.
  PatienceMix truth(3, 2, 1.0);
  truth.set(0, 0, 0.17, 1.0);
  truth.set(0, 1, 0.83, 2.0);
  truth.set(1, 0, 0.50, 1.0);
  truth.set(1, 1, 0.50, 2.33);
  truth.set(2, 0, 0.83, 1.0);
  truth.set(2, 1, 0.17, 2.67);
  const std::vector<double> demand = {22.0, 13.0, 8.0};
  const WaitingFunctionEstimator estimator(3, 2, 1.0);
  Rng rng(2011);
  std::vector<EstimationDataset> data;
  for (int d = 0; d < 20; ++d) {
    math::Vector rewards(3);
    for (double& p : rewards) p = rng.uniform(0.0, 1.0);
    data.push_back(estimator.synthesize(truth, demand, rewards));
  }
  WaitingFunctionEstimator::MultiStartOptions options;
  options.starts = 8;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimator.estimate_multistart(demand, data, options));
  }
  state.counters["starts"] = static_cast<double>(options.starts);
  state.counters["threads"] = static_cast<double>(options.threads);
}
BENCHMARK(BM_MultiStartEstimation)
    ->Arg(1)
    ->Arg(static_cast<long>(hardware_threads()))
    ->Unit(benchmark::kMillisecond);

void BM_OnlinePriceStepSpeculative(benchmark::State& state) {
  // The rolling-horizon loop with speculative pre-solve of the next period:
  // when the measurement confirms the forecast (the steady-state case), the
  // published answer is the precomputed one and the measured latency is the
  // bookkeeping cost only.
  OnlinePricer pricer(paper::dynamic_model_48(), {}, /*speculative=*/true);
  std::size_t period = 0;
  for (auto _ : state) {
    const double forecast = pricer.model().arrivals().tip_demand(period);
    benchmark::DoNotOptimize(pricer.observe_period(period, forecast));
    period = (period + 1) % 48;
  }
  state.counters["spec_hits"] =
      static_cast<double>(pricer.speculation_hits());
  state.counters["spec_misses"] =
      static_cast<double>(pricer.speculation_misses());
}
BENCHMARK(BM_OnlinePriceStepSpeculative)->Unit(benchmark::kMillisecond);

}  // namespace
