// Figure 7: optimal rewards for the offline dynamic session model.
// "Rewards are generally greater than in the static session model,
// breaking the [single-period] barrier"; average daily cost $0.72/user in
// the paper's run.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "core/metrics.hpp"
#include "core/paper_data.hpp"
#include "core/static_optimizer.hpp"
#include "dynamic/dynamic_optimizer.hpp"
#include "dynamic/paper_dynamic.hpp"

int main() {
  using namespace tdp;
  bench::banner("Fig. 7", "optimal rewards, dynamic session model (48p)");

  const DynamicModel model = paper::dynamic_model_48();
  const DynamicPricingSolution sol = optimize_dynamic_prices(model);

  // Static rewards for the side-by-side comparison the caption makes.
  const PricingSolution static_sol =
      optimize_static_prices(paper::static_model_48());

  TextTable table({"Period", "Arrivals (MBps)", "Dynamic reward ($0.10)",
                   "Static reward ($0.10)"});
  const auto tip = model.arrivals().tip_demand_vector();
  for (std::size_t i = 0; i < 48; ++i) {
    table.add_row({std::to_string(i + 1), TextTable::num(to_mbps(tip[i]), 0),
                   TextTable::num(sol.rewards[i], 3),
                   TextTable::num(static_sol.rewards[i], 3)});
  }
  bench::print_table(table);

  double max_dynamic = 0.0;
  double mean_dynamic = 0.0;
  for (double p : sol.rewards) {
    max_dynamic = std::max(max_dynamic, p);
    mean_dynamic += p / 48.0;
  }
  std::printf("\n");
  bench::paper_vs_measured(
      "rewards break the single-period cap a/2 = 0.5", "max 0.57",
      "max " + TextTable::num(max_dynamic, 3) + ", mean " +
          TextTable::num(mean_dynamic, 3));
  bench::paper_vs_measured(
      "per-user daily cost with TDP", "$0.72",
      "$" + TextTable::num(per_user_daily_cost_dollars(
                               sol.evaluation.total_cost, kPaperUserCount),
                           2) +
          " (TIP baseline $" +
          TextTable::num(
              per_user_daily_cost_dollars(sol.tip_cost, kPaperUserCount), 2) +
          ")");
  bench::paper_vs_measured(
      "rewards generally exceed the static model's", "yes",
      "dynamic mean " + TextTable::num(mean_dynamic, 3) + " vs static mean " +
          TextTable::num(
              [&] {
                double m = 0.0;
                for (double p : static_sol.rewards) m += p / 48.0;
                return m;
              }(),
              3));
  return 0;
}
