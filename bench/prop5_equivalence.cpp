// Proposition 5: for a single bottleneck the dynamic model reduces to the
// static model with uniform arrival times and carry-over. Demonstrated two
// ways:
//  1. with ample capacity (no backlog ever forms) the dynamic steady state
//     equals the static flow balance computed with uniform-arrival lags;
//  2. the session-level stochastic simulator converges to the fluid model
//     as sessions shrink (the law-of-large-numbers limit behind the fluid
//     reduction).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/deferral_kernel.hpp"
#include "core/paper_data.hpp"
#include "dynamic/dynamic_model.hpp"
#include "dynamic/stochastic_sim.hpp"

int main() {
  using namespace tdp;
  bench::banner("Prop. 5", "static == dynamic on a single bottleneck");

  DemandProfile profile = paper::make_profile(
      paper::table8_mix_12(), paper::kStaticNormalizationReward,
      LagNormalization::kContinuous);
  const DeferralKernel uniform_kernel(profile,
                                      LagConvention::kUniformArrival);

  const DynamicModel model(profile, 100.0,  // ample capacity: no backlog
                           math::PiecewiseLinearCost::hinge(1.0));
  const math::Vector rewards(12, 0.4);
  const auto ev = model.evaluate(rewards);

  // Static flow balance with the same uniform-arrival kernel.
  TextTable table({"Period", "Static x_i (uniform lags)", "Dynamic arrivals",
                   "abs diff"});
  double worst = 0.0;
  for (std::size_t i = 0; i < 12; ++i) {
    const double x_static = profile.tip_demand(i) -
                            uniform_kernel.outflow(i, rewards) +
                            uniform_kernel.inflow(i, rewards[i]);
    const double diff = std::abs(x_static - ev.arrivals[i]);
    worst = std::max(worst, diff);
    table.add_row({std::to_string(i + 1), TextTable::num(x_static, 4),
                   TextTable::num(ev.arrivals[i], 4),
                   TextTable::num(diff, 10)});
  }
  bench::print_table(table);
  std::printf("\n");
  bench::paper_vs_measured("static/dynamic flow balance identical",
                           "equivalent (Prop. 5)",
                           "max abs diff " + TextTable::num(worst, 12));

  // Stochastic convergence.
  const DynamicModel congested(profile, 20.0,
                               math::PiecewiseLinearCost::hinge(1.0));
  const auto fluid = congested.evaluate(rewards);
  std::printf("\nStochastic sessions -> fluid limit (congested, A = 200 "
              "MBps):\n");
  TextTable conv({"mean session size b", "stochastic cost/day",
                  "fluid cost/day", "relative gap"});
  for (double b : {0.5, 0.1, 0.02}) {
    StochasticSimOptions options;
    options.mean_session_size = b;
    options.days = 200;
    const auto sim = simulate_stochastic(congested, rewards, options);
    conv.add_row({TextTable::num(b, 2),
                  TextTable::num(sim.mean_total_cost, 2),
                  TextTable::num(fluid.total_cost, 2),
                  TextTable::num(std::abs(sim.mean_total_cost -
                                          fluid.total_cost) /
                                     fluid.total_cost,
                                 3)});
  }
  bench::print_table(conv);
  bench::paper_vs_measured("gap shrinks as sessions shrink",
                           "fluid reduction valid", "rightmost column");
  return 0;
}
