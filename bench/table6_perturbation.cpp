// Table VI + Table XII: perturbation of period-1 demand under TIP in the
// 12-period model (Table XI mixes, 180..260 MBps, baseline 220). Reports
// the price change (sum of |baseline - perturbed| rewards), the cost change
// from re-optimizing vs keeping baseline rewards, and the per-period reward
// schedules of Table XII.
//
// The perturbed instances run through the parallel BatchSolver with the
// unperturbed baseline as task 0. Results are bit-identical for any thread
// count; the cold start keeps them bit-identical to the single-solve path
// too (warm starts only match to the solver tolerance).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/batch_solver.hpp"
#include "core/paper_data.hpp"
#include "core/static_optimizer.hpp"

int main() {
  using namespace tdp;
  bench::banner("Table VI / Table XII",
                "period-1 demand perturbation, 12-period model");

  // Task 0 is the unperturbed baseline; tasks 1..9 are the Table XI
  // perturbations at 180..260 MBps.
  BatchSolveOptions batch;
  batch.warm_start = false;
  BatchSolver solver(batch);
  const std::vector<PricingSolution> solutions = solver.solve_generated(
      10, [](std::size_t task) -> StaticModel {
        if (task == 0) return paper::static_model_12();
        const int units = 18 + static_cast<int>(task) - 1;
        return paper::static_model_12_with_period1(
            paper::table11_period1_mix(units));
      });
  const PricingSolution& baseline = solutions[0];

  TextTable table6({"Demand (MBps)", "Price change ($0.10)",
                    "Cost change (%)"});
  TextTable table12({"Demand", "p1", "p2", "p3", "p4", "p5", "p6-12 (max)"});

  for (int units = 18; units <= 26; ++units) {
    const StaticModel model = paper::static_model_12_with_period1(
        paper::table11_period1_mix(units));
    const PricingSolution& sol =
        solutions[static_cast<std::size_t>(units - 18 + 1)];

    double price_change = 0.0;
    for (std::size_t i = 0; i < 12; ++i) {
      price_change += std::abs(sol.rewards[i] - baseline.rewards[i]);
    }
    // Cost on the perturbed model with re-optimized vs baseline rewards.
    const double cost_opt = model.total_cost(sol.rewards);
    const double cost_nominal = model.total_cost(baseline.rewards);
    const double cost_change = 100.0 * (cost_opt - cost_nominal) /
                               cost_nominal;

    table6.add_row({TextTable::num(units * 10.0, 0),
                    TextTable::num(price_change, 4),
                    TextTable::num(cost_change, 2)});

    double tail_max = 0.0;
    for (std::size_t i = 5; i < 12; ++i) {
      tail_max = std::max(tail_max, sol.rewards[i]);
    }
    table12.add_row({TextTable::num(units * 10.0, 0),
                     TextTable::num(sol.rewards[0], 2),
                     TextTable::num(sol.rewards[1], 2),
                     TextTable::num(sol.rewards[2], 2),
                     TextTable::num(sol.rewards[3], 2),
                     TextTable::num(sol.rewards[4], 2),
                     TextTable::num(tail_max, 2)});
  }

  std::printf("Table VI analogue (baseline 220 MBps):\n");
  bench::print_table(table6);
  bench::report_batch(solver.last_timing());
  std::printf("\n");
  bench::paper_vs_measured(
      "price/cost changes shrink toward the 220 baseline",
      "0.35 -> ~0 / -5.8% -> 0%", "see rows above");
  bench::paper_vs_measured(
      "increases above baseline barely move prices", "~0.004-0.008",
      "rows 230-260");

  std::printf("\nTable XII analogue (rewards in $0.10 units):\n");
  bench::print_table(table12);
  bench::paper_vs_measured(
      "rewards concentrate on periods 2-5; p1 > 0 only for low demand",
      "p1: 0.20 at 180 -> 0 at 210+", "column p1");
  return 0;
}
