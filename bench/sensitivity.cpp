// Sensitivity studies for the abstract's claim: "The degree to which
// traffic is evened out over times of the day depends on the
// time-sensitivity of sessions, cost structure of the ISP, and amount of
// traffic not subject to time-dependent prices."
//
//  S1  time-sensitivity: scale every patience index beta by a factor
//  S2  cost structure: single-slope vs tiered (multi-kink) capacity cost
//  S3  TDP-exempt traffic: a fraction of every period's demand ignores
//      prices (users under the usage cap, Section II); the ISP subtracts
//      it from the capacity A_i and prices only the remainder.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/metrics.hpp"
#include "core/paper_data.hpp"
#include "core/static_optimizer.hpp"

namespace {

using namespace tdp;

DemandProfile scaled_beta_profile(double beta_scale) {
  const auto mix = paper::table7_mix_48();
  std::array<WaitingFunctionPtr, 10> waiting;
  for (std::size_t s = 0; s < paper::kPatienceIndices.size(); ++s) {
    waiting[s] = std::make_shared<PowerLawWaitingFunction>(
        paper::kPatienceIndices[s] * beta_scale, 48,
        paper::kStaticNormalizationReward);
  }
  DemandProfile profile(48);
  for (std::size_t i = 0; i < 48; ++i) {
    for (std::size_t s = 0; s < 10; ++s) {
      if (mix[i][s] > 0.0) profile.add_class(i, {waiting[s], mix[i][s]});
    }
  }
  return profile;
}

}  // namespace

int main() {
  bench::banner("Sensitivity", "time-sensitivity / cost structure / exempt "
                               "traffic");

  // S1: patience scaling.
  {
    std::printf("\nS1  patience-index scaling (all beta x factor):\n");
    TextTable t({"beta scale", "Savings (%)", "Spread ratio",
                 "Traffic moved (%)"});
    for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      StaticModel model(scaled_beta_profile(scale),
                        paper::kStaticCapacityUnits,
                        math::PiecewiseLinearCost::hinge(3.0));
      const PricingSolution sol = optimize_static_prices(model);
      const auto tip = model.demand().tip_demand_vector();
      t.add_row({TextTable::num(scale, 2),
                 TextTable::num(100.0 * (sol.tip_cost - sol.total_cost) /
                                    sol.tip_cost,
                                1),
                 TextTable::num(residue_spread(sol.usage) /
                                    residue_spread(tip),
                                3),
                 TextTable::num(
                     100.0 * redistributed_fraction(tip, sol.usage), 1)});
    }
    bench::print_table(t);
    std::printf("  impatient populations (large scale) blunt TDP: sessions "
                "are \"too\n  time-sensitive\" to move far.\n");
  }

  // S2: cost structure.
  {
    std::printf("\nS2  cost structure (same total slope, different "
                "shapes):\n");
    TextTable t({"Capacity cost f", "Savings (%)", "Spread ratio"});
    struct Case {
      const char* name;
      math::PiecewiseLinearCost cost;
    };
    const Case cases[] = {
        {"3 max(x,0) (paper)", math::PiecewiseLinearCost::hinge(3.0)},
        {"tiered: 1 above 0, +2 above 2",
         math::PiecewiseLinearCost(0.0, {{0.0, 1.0}, {2.0, 2.0}})},
        {"tiered: 2 above 0, +1 above 4",
         math::PiecewiseLinearCost(0.0, {{0.0, 2.0}, {4.0, 1.0}})},
    };
    for (const Case& c : cases) {
      StaticModel model(
          paper::make_profile(paper::table7_mix_48(),
                              paper::kStaticNormalizationReward),
          paper::kStaticCapacityUnits, c.cost);
      const PricingSolution sol = optimize_static_prices(model);
      const auto tip = model.demand().tip_demand_vector();
      t.add_row({c.name,
                 TextTable::num(100.0 * (sol.tip_cost - sol.total_cost) /
                                    sol.tip_cost,
                                1),
                 TextTable::num(residue_spread(sol.usage) /
                                    residue_spread(tip),
                                3)});
    }
    bench::print_table(t);
    std::printf("  gentle first tiers tolerate small overages, so the ISP "
                "pays fewer\n  rewards and evens out less.\n");
  }

  // S3: TDP-exempt traffic consuming capacity.
  {
    std::printf("\nS3  fraction of traffic not subject to TDP (under the "
                "usage cap):\n");
    TextTable t({"Exempt fraction", "Savings vs full-TDP TIP (%)",
                 "Spread ratio (priced traffic)"});
    const auto full_mix = paper::table7_mix_48();
    for (double exempt : {0.0, 0.2, 0.4, 0.6}) {
      // Exempt traffic shrinks both the priced demand and the available
      // capacity A_i (Section II's time-varying capacity device).
      DemandProfile priced(48);
      std::vector<double> capacity(48, 0.0);
      std::array<WaitingFunctionPtr, 10> waiting;
      for (std::size_t s = 0; s < 10; ++s) {
        waiting[s] = std::make_shared<PowerLawWaitingFunction>(
            paper::kPatienceIndices[s], 48,
            paper::kStaticNormalizationReward);
      }
      for (std::size_t i = 0; i < 48; ++i) {
        double exempt_volume = 0.0;
        for (std::size_t s = 0; s < 10; ++s) {
          const double volume = full_mix[i][s] * (1.0 - exempt);
          exempt_volume += full_mix[i][s] * exempt;
          if (volume > 0.0) priced.add_class(i, {waiting[s], volume});
        }
        capacity[i] = paper::kStaticCapacityUnits - exempt_volume;
        capacity[i] = std::max(capacity[i], 0.0);
      }
      StaticModel model(std::move(priced), capacity,
                        math::PiecewiseLinearCost::hinge(3.0));
      const PricingSolution sol = optimize_static_prices(model);
      const auto tip = model.demand().tip_demand_vector();
      t.add_row({TextTable::num(exempt, 1),
                 TextTable::num(100.0 * (sol.tip_cost - sol.total_cost) /
                                    std::max(sol.tip_cost, 1e-9),
                                1),
                 TextTable::num(residue_spread(sol.usage) /
                                    std::max(residue_spread(tip), 1e-9),
                                3)});
    }
    bench::print_table(t);
    std::printf("  exempt traffic eats the capacity headroom the ISP needs "
                "as deferral\n  targets, so TDP's leverage shrinks with the "
                "exempt share.\n");
  }
  return 0;
}
