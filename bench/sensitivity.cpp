// Sensitivity studies for the abstract's claim: "The degree to which
// traffic is evened out over times of the day depends on the
// time-sensitivity of sessions, cost structure of the ISP, and amount of
// traffic not subject to time-dependent prices."
//
//  S1  time-sensitivity: scale every patience index beta by a factor
//  S2  cost structure: single-slope vs tiered (multi-kink) capacity cost
//  S3  TDP-exempt traffic: a fraction of every period's demand ignores
//      prices (users under the usage cap, Section II); the ISP subtracts
//      it from the capacity A_i and prices only the remainder.
//
// Each study is a batch of independent convex solves and runs through the
// parallel BatchSolver (bit-identical for any thread count).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/batch_solver.hpp"
#include "core/metrics.hpp"
#include "core/paper_data.hpp"
#include "core/static_optimizer.hpp"

namespace {

using namespace tdp;

DemandProfile scaled_beta_profile(double beta_scale) {
  const auto mix = paper::table7_mix_48();
  std::array<WaitingFunctionPtr, 10> waiting;
  for (std::size_t s = 0; s < paper::kPatienceIndices.size(); ++s) {
    waiting[s] = std::make_shared<PowerLawWaitingFunction>(
        paper::kPatienceIndices[s] * beta_scale, 48,
        paper::kStaticNormalizationReward);
  }
  DemandProfile profile(48);
  for (std::size_t i = 0; i < 48; ++i) {
    for (std::size_t s = 0; s < 10; ++s) {
      if (mix[i][s] > 0.0) profile.add_class(i, {waiting[s], mix[i][s]});
    }
  }
  return profile;
}

}  // namespace

int main() {
  bench::banner("Sensitivity", "time-sensitivity / cost structure / exempt "
                               "traffic");

  // Cold starts keep every number bit-identical to the single-solve path
  // (warm starts only match to the solver tolerance).
  BatchSolveOptions batch;
  batch.warm_start = false;
  BatchSolver solver(batch);

  // S1: patience scaling.
  {
    std::printf("\nS1  patience-index scaling (all beta x factor):\n");
    TextTable t({"beta scale", "Savings (%)", "Spread ratio",
                 "Traffic moved (%)"});
    const std::vector<double> scales = {0.25, 0.5, 1.0, 2.0, 4.0};
    std::vector<StaticModel> models;
    models.reserve(scales.size());
    for (double scale : scales) {
      models.emplace_back(scaled_beta_profile(scale),
                          paper::kStaticCapacityUnits,
                          math::PiecewiseLinearCost::hinge(3.0));
    }
    const auto solutions = solver.solve(models);
    for (std::size_t k = 0; k < scales.size(); ++k) {
      const PricingSolution& sol = solutions[k];
      const auto tip = models[k].demand().tip_demand_vector();
      t.add_row({TextTable::num(scales[k], 2),
                 TextTable::num(100.0 * (sol.tip_cost - sol.total_cost) /
                                    sol.tip_cost,
                                1),
                 TextTable::num(residue_spread(sol.usage) /
                                    residue_spread(tip),
                                3),
                 TextTable::num(
                     100.0 * redistributed_fraction(tip, sol.usage), 1)});
    }
    bench::print_table(t);
    bench::report_batch(solver.last_timing());
    std::printf("  impatient populations (large scale) blunt TDP: sessions "
                "are \"too\n  time-sensitive\" to move far.\n");
  }

  // S2: cost structure.
  {
    std::printf("\nS2  cost structure (same total slope, different "
                "shapes):\n");
    TextTable t({"Capacity cost f", "Savings (%)", "Spread ratio"});
    struct Case {
      const char* name;
      math::PiecewiseLinearCost cost;
    };
    const Case cases[] = {
        {"3 max(x,0) (paper)", math::PiecewiseLinearCost::hinge(3.0)},
        {"tiered: 1 above 0, +2 above 2",
         math::PiecewiseLinearCost(0.0, {{0.0, 1.0}, {2.0, 2.0}})},
        {"tiered: 2 above 0, +1 above 4",
         math::PiecewiseLinearCost(0.0, {{0.0, 2.0}, {4.0, 1.0}})},
    };
    std::vector<StaticModel> models;
    for (const Case& c : cases) {
      models.emplace_back(
          paper::make_profile(paper::table7_mix_48(),
                              paper::kStaticNormalizationReward),
          paper::kStaticCapacityUnits, c.cost);
    }
    const auto solutions = solver.solve(models);
    for (std::size_t k = 0; k < models.size(); ++k) {
      const PricingSolution& sol = solutions[k];
      const auto tip = models[k].demand().tip_demand_vector();
      t.add_row({cases[k].name,
                 TextTable::num(100.0 * (sol.tip_cost - sol.total_cost) /
                                    sol.tip_cost,
                                1),
                 TextTable::num(residue_spread(sol.usage) /
                                    residue_spread(tip),
                                3)});
    }
    bench::print_table(t);
    bench::report_batch(solver.last_timing());
    std::printf("  gentle first tiers tolerate small overages, so the ISP "
                "pays fewer\n  rewards and evens out less.\n");
  }

  // S3: TDP-exempt traffic consuming capacity.
  {
    std::printf("\nS3  fraction of traffic not subject to TDP (under the "
                "usage cap):\n");
    TextTable t({"Exempt fraction", "Savings vs full-TDP TIP (%)",
                 "Spread ratio (priced traffic)"});
    const auto full_mix = paper::table7_mix_48();
    const std::vector<double> exempts = {0.0, 0.2, 0.4, 0.6};
    std::vector<StaticModel> models;
    for (double exempt : exempts) {
      // Exempt traffic shrinks both the priced demand and the available
      // capacity A_i (Section II's time-varying capacity device).
      DemandProfile priced(48);
      std::vector<double> capacity(48, 0.0);
      std::array<WaitingFunctionPtr, 10> waiting;
      for (std::size_t s = 0; s < 10; ++s) {
        waiting[s] = std::make_shared<PowerLawWaitingFunction>(
            paper::kPatienceIndices[s], 48,
            paper::kStaticNormalizationReward);
      }
      for (std::size_t i = 0; i < 48; ++i) {
        double exempt_volume = 0.0;
        for (std::size_t s = 0; s < 10; ++s) {
          const double volume = full_mix[i][s] * (1.0 - exempt);
          exempt_volume += full_mix[i][s] * exempt;
          if (volume > 0.0) priced.add_class(i, {waiting[s], volume});
        }
        capacity[i] = paper::kStaticCapacityUnits - exempt_volume;
        capacity[i] = std::max(capacity[i], 0.0);
      }
      models.emplace_back(std::move(priced), capacity,
                          math::PiecewiseLinearCost::hinge(3.0));
    }
    const auto solutions = solver.solve(models);
    for (std::size_t k = 0; k < models.size(); ++k) {
      const PricingSolution& sol = solutions[k];
      const auto tip = models[k].demand().tip_demand_vector();
      t.add_row({TextTable::num(exempts[k], 1),
                 TextTable::num(100.0 * (sol.tip_cost - sol.total_cost) /
                                    std::max(sol.tip_cost, 1e-9),
                                1),
                 TextTable::num(residue_spread(sol.usage) /
                                    std::max(residue_spread(tip), 1e-9),
                                3)});
    }
    bench::print_table(t);
    bench::report_batch(solver.last_timing());
    std::printf("  exempt traffic eats the capacity headroom the ISP needs "
                "as deferral\n  targets, so TDP's leverage shrinks with the "
                "exempt share.\n");
  }
  return 0;
}
