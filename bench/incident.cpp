// Incident-engine bench: what the deterministic anomaly detectors cost the
// multi-day loop and how fast they catch injected storm onsets — emitting
// BENCH_JSON lines and a machine-readable BENCH_incident.json for the CI
// perf gate (tools/check_bench_regression.py --suite incident).
//
//   incident_calm       the calm run (2% i.i.d. chaos, no storms) with the
//                       engine on: false_incidents counts incidents opened
//                       where nothing regime-scale happened (gated == 0;
//                       sensitive *alerts* are fine and expected)
//   incident_detection  the reference 20%-duty storm run: every injected
//                       regime onset (replayed from the seeded Markov
//                       chains, domain by domain) must be answered by an
//                       alert of the matching detector within
//                       --max-detection-lag periods (default 4); the bench
//                       reports max/mean lag and fails on a missed onset
//   incident_overhead   the same storm run with the engine off vs on:
//                       incident_overhead_fraction = on/off - 1 is gated
//                       <= --max-incident-overhead, and the two runs'
//                       DayMetrics must be bitwise identical (the engine
//                       is a pure observer — a divergence fails the bench)
//
// Absolute times are normalized by calibration_seconds (the same fixed
// reference workload as bench_kernel_suite, timed in this process) before
// baseline comparison, so the regression gate measures code changes rather
// than host-speed changes.
//
//   ./bench/bench_incident [--out BENCH_incident.json] [--users N] [--days N]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/fault.hpp"
#include "core/deferral_kernel.hpp"
#include "core/paper_data.hpp"
#include "horizon/multi_day_driver.hpp"
#include "math/matrix.hpp"
#include "obs/incident/incident.hpp"

namespace {

using Clock = std::chrono::steady_clock;
namespace inc = tdp::obs::incident;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

template <typename Fn>
double time_reps(std::size_t reps, Fn&& fn) {
  fn();
  const auto start = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) fn();
  return seconds_since(start);
}

void append_json_field(std::string& out, const char* key, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "\"%s\":%.17g", key, value);
  out += buffer;
}

struct BenchEntry {
  std::string name;
  std::vector<std::pair<std::string, double>> fields;
};

/// The 20%-duty storm plan the acceptance criteria are written against
/// (same constants as bench_storm_recovery).
tdp::StormRegime twenty_duty(double intensity) {
  tdp::StormRegime regime;
  regime.onset = 0.06;
  regime.persist = 0.76;
  regime.intensity = intensity;
  return regime;
}

tdp::horizon::HorizonConfig storm_config(std::uint64_t users,
                                         std::size_t days, bool storms,
                                         bool engine) {
  tdp::horizon::HorizonConfig config;
  config.population.users = users;
  config.population.periods = 48;
  config.population.seed = 20110611;
  config.shards = 32;
  config.warmup_days = 1;
  config.horizon_days = days;
  config.estimation_window = 4;
  config.estimation_min_days = 2;
  config.estimation_starts = 2;
  config.fault.price_pull_drop = 0.02;
  config.fault.measurement_loss = 0.02;
  config.fault.seed = 424242;
  if (storms) {
    config.fault.storm_blackout = twenty_duty(1.0);
    config.fault.storm_channel = twenty_duty(0.5);
    config.fault.storm_solver = twenty_duty(1.0);
  }
  config.incident.enabled = engine;
  return config;
}

bool days_bitwise_equal(const std::vector<tdp::horizon::DayMetrics>& a,
                        const std::vector<tdp::horizon::DayMetrics>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t d = 0; d < a.size(); ++d) {
    if (a[d].rewards != b[d].rewards) return false;
    if (a[d].offered_units != b[d].offered_units) return false;
    if (a[d].realized_units != b[d].realized_units) return false;
    if (a[d].sessions != b[d].sessions) return false;
    if (a[d].deferred_sessions != b[d].deferred_sessions) return false;
    if (a[d].beta_estimate != b[d].beta_estimate) return false;
  }
  return true;
}

/// Ground-truth regime onsets, replayed from the same seeded Markov chains
/// the run drew from: period t is an onset when the chain is ON at t and
/// was OFF at t-1 (or t == 0).
std::vector<std::uint64_t> regime_onsets(const tdp::FaultInjector& injector,
                                         tdp::FaultInjector::StormDomain dom,
                                         std::size_t total_periods) {
  std::vector<std::uint64_t> onsets;
  bool prev = false;
  for (std::size_t t = 0; t < total_periods; ++t) {
    const bool on = injector.storm_active(dom, t);
    if (on && !prev) onsets.push_back(t);
    prev = on;
  }
  return onsets;
}

/// The detector that answers for a storm domain.
inc::AlertKind domain_kind(tdp::FaultInjector::StormDomain dom) {
  switch (dom) {
    case tdp::FaultInjector::StormDomain::kBlackout:
      return inc::AlertKind::kMeasurementCusum;
    case tdp::FaultInjector::StormDomain::kChannel:
      return inc::AlertKind::kChannelCusum;
    default:
      return inc::AlertKind::kSolverCusum;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tdp;

  std::string out_path;
  std::uint64_t users = 20000;
  std::size_t days = 4;
  std::size_t max_lag = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      users = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      days = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--max-detection-lag") == 0 &&
               i + 1 < argc) {
      max_lag =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    }
  }

  bench::banner("incident",
                "incident-engine detection lead/lag vs injected storm "
                "onsets + pure-observer overhead");

  std::vector<BenchEntry> entries;

  // Calibration: the same fixed reference workload as bench_kernel_suite.
  double calibration_seconds = 0.0;
  {
    const DeferralKernel kernel(
        paper::make_profile(paper::table8_mix_12(),
                            paper::kStaticNormalizationReward,
                            LagNormalization::kDiscrete, 0.7),
        LagConvention::kPeriodStart);
    const math::Vector rewards(12, 0.8);
    double sink = 0.0;
    calibration_seconds = time_reps(50, [&] {
      for (std::size_t i = 0; i < 12; ++i) {
        sink += kernel.inflow(i, rewards[i]) + kernel.outflow(i, rewards);
      }
    });
    if (sink < 0.0) std::printf("?\n");  // keep the sink alive
  }

  const std::size_t total_periods = (1 + days) * 48;

  // ---- incident_calm: zero false incidents where nothing happened ---------
  {
    bench::BenchReport report("incident_calm");
    horizon::MultiDayDriver driver(storm_config(users, days, false, true));
    const auto start = Clock::now();
    while (!driver.done()) driver.step_period();
    const double calm_wall = seconds_since(start);

    const inc::IncidentEngine& engine = *driver.incident_engine();
    const double false_incidents =
        static_cast<double>(engine.incidents_opened());
    report.add("users", static_cast<std::uint64_t>(users));
    report.add("days", static_cast<std::uint64_t>(days));
    report.add("calm_wall_seconds", calm_wall);
    report.add("calm_alerts", engine.alerts_emitted());
    report.add("false_incidents", engine.incidents_opened());
    report.emit();
    entries.push_back(
        {"incident_calm",
         {{"calm_wall_seconds", calm_wall},
          {"calm_alerts", static_cast<double>(engine.alerts_emitted())},
          {"false_incidents", false_incidents}}});
    std::printf("  incident_calm      %llu alerts, %.0f incidents on the "
                "calm run, %.3f s\n",
                static_cast<unsigned long long>(engine.alerts_emitted()),
                false_incidents, calm_wall);
  }

  // ---- incident_overhead + incident_detection on the reference storm ------
  std::vector<horizon::DayMetrics> off_days;
  double off_wall = 0.0;
  {
    horizon::MultiDayDriver driver(storm_config(users, days, true, false));
    const auto start = Clock::now();
    while (!driver.done()) driver.step_period();
    off_wall = seconds_since(start);
    off_days = driver.completed_days();
  }

  horizon::MultiDayDriver stormy(storm_config(users, days, true, true));
  const auto on_start = Clock::now();
  while (!stormy.done()) stormy.step_period();
  const double on_wall = seconds_since(on_start);

  if (!days_bitwise_equal(off_days, stormy.completed_days())) {
    std::printf("  ERROR: engine-on storm run diverged from engine-off "
                "(the incident engine must be a pure observer)\n");
    return 1;
  }

  {
    bench::BenchReport report("incident_overhead");
    const double overhead = off_wall > 0.0 ? on_wall / off_wall - 1.0 : 0.0;
    report.add("engine_off_wall_seconds", off_wall);
    report.add("engine_on_wall_seconds", on_wall);
    report.add("incident_overhead_fraction", overhead);
    report.emit();
    entries.push_back({"incident_overhead",
                       {{"engine_off_wall_seconds", off_wall},
                        {"engine_on_wall_seconds", on_wall},
                        {"incident_overhead_fraction", overhead}}});
    std::printf("  incident_overhead  %.3f s on vs %.3f s off "
                "(%.2f%% overhead), day metrics bit-identical: yes\n",
                on_wall, off_wall, 1e2 * overhead);
  }

  {
    bench::BenchReport report("incident_detection");
    const FaultInjector truth(storm_config(users, days, true, false).fault);
    const inc::IncidentEngine& engine = *stormy.incident_engine();

    const FaultInjector::StormDomain domains[] = {
        FaultInjector::StormDomain::kBlackout,
        FaultInjector::StormDomain::kChannel,
        FaultInjector::StormDomain::kSolver,
    };
    std::size_t onsets_total = 0;
    std::size_t onsets_detected = 0;
    std::uint64_t lag_max = 0;
    double lag_sum = 0.0;
    for (const FaultInjector::StormDomain dom : domains) {
      const inc::AlertKind kind = domain_kind(dom);
      for (const std::uint64_t t0 :
           regime_onsets(truth, dom, total_periods)) {
        // Onsets in the last stretch have no room for a timely answer
        // before the run ends; skip them rather than gate on truncation.
        if (t0 + max_lag >= total_periods) continue;
        ++onsets_total;
        bool detected = false;
        for (const inc::Alert& alert : engine.alerts()) {
          if (alert.kind != kind || alert.abs_period < t0) continue;
          if (alert.abs_period - t0 <= max_lag) {
            detected = true;
            const std::uint64_t lag = alert.abs_period - t0;
            if (lag > lag_max) lag_max = lag;
            lag_sum += static_cast<double>(lag);
          }
          break;  // alerts are in abs_period order; first answer decides
        }
        if (detected) {
          ++onsets_detected;
        } else {
          std::printf("  MISSED %s onset at t=%llu (no %s alert within "
                      "%zu periods)\n",
                      dom == FaultInjector::StormDomain::kBlackout ? "blackout"
                      : dom == FaultInjector::StormDomain::kChannel ? "channel"
                                                                    : "solver",
                      static_cast<unsigned long long>(t0), to_string(kind),
                      max_lag);
        }
      }
    }
    const double lag_mean =
        onsets_detected ? lag_sum / static_cast<double>(onsets_detected) : 0.0;

    report.add("onsets_total", static_cast<std::uint64_t>(onsets_total));
    report.add("onsets_detected",
               static_cast<std::uint64_t>(onsets_detected));
    report.add("max_detection_lag_periods", lag_max);
    report.add("mean_detection_lag_periods", lag_mean);
    report.add("storm_alerts", engine.alerts_emitted());
    report.add("storm_incidents", engine.incidents_opened());
    report.emit();
    entries.push_back(
        {"incident_detection",
         {{"onsets_total", static_cast<double>(onsets_total)},
          {"onsets_detected", static_cast<double>(onsets_detected)},
          {"max_detection_lag_periods", static_cast<double>(lag_max)},
          {"mean_detection_lag_periods", lag_mean},
          {"storm_alerts", static_cast<double>(engine.alerts_emitted())},
          {"storm_incidents",
           static_cast<double>(engine.incidents_opened())}}});
    std::printf("  incident_detection %zu/%zu onsets answered, lag max %llu "
                "mean %.2f periods; %llu alerts, %llu incidents\n",
                onsets_detected, onsets_total,
                static_cast<unsigned long long>(lag_max), lag_mean,
                static_cast<unsigned long long>(engine.alerts_emitted()),
                static_cast<unsigned long long>(engine.incidents_opened()));
    if (onsets_detected != onsets_total) return 1;
  }

  // ---- BENCH_incident.json ------------------------------------------------
  if (!out_path.empty()) {
    std::string json = "{\n  \"schema\": 1,\n  ";
    append_json_field(json, "calibration_seconds", calibration_seconds);
    json += ",\n  \"benches\": {\n";
    for (std::size_t e = 0; e < entries.size(); ++e) {
      json += "    \"" + entries[e].name + "\": {";
      for (std::size_t f = 0; f < entries[e].fields.size(); ++f) {
        if (f) json += ", ";
        append_json_field(json, entries[e].fields[f].first.c_str(),
                          entries[e].fields[f].second);
      }
      json += e + 1 < entries.size() ? "},\n" : "}\n";
    }
    json += "  }\n}\n";
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << json;
    std::printf("  wrote %s\n", out_path.c_str());
  }
  return 0;
}
