// Figure 11: TIP traffic pattern over one hour on the TUBE testbed.
// "Traffic is high at the beginning of the hour for both users, but lower
// at the end."
#include <cstdio>

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "tube/tube_system.hpp"

int main() {
  using namespace tdp;
  set_log_level(LogLevel::kError);
  bench::banner("Fig. 11", "TUBE testbed, TIP traffic over one hour");

  TubeSystem tube;
  const auto report = tube.run_tip(2);  // two paired hours, averaged

  TextTable table({"Period (5 min)", "User 1 (MB)", "User 2 (MB)",
                   "Total (MB)"});
  for (std::size_t i = 0; i < 12; ++i) {
    table.add_row({std::to_string(i + 1),
                   TextTable::num(report.user_period_mb[0][i], 0),
                   TextTable::num(report.user_period_mb[1][i], 0),
                   TextTable::num(report.total_period_mb[i], 0)});
  }
  bench::print_table(table);

  const auto& totals = report.total_period_mb;
  const double early = totals[0] + totals[1] + totals[2] + totals[3];
  const double late = totals[8] + totals[9] + totals[10] + totals[11];
  std::printf("\n");
  bench::paper_vs_measured("traffic high early, low late", "declining hour",
                           TextTable::num(early, 0) + " MB (first third) vs " +
                               TextTable::num(late, 0) + " MB (last third)");
  bench::paper_vs_measured("deferrals under flat pricing", "none",
                           std::to_string(report.deferrals));
  std::printf("  sessions: %zu, mean bottleneck utilization %.0f%%\n",
              report.sessions, 100.0 * report.mean_utilization);
  return 0;
}
