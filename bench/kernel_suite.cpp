// Kernel perf suite: named microbenches for the fused SoA deferral-kernel
// paths, emitting BENCH_JSON lines plus a machine-readable BENCH_kernel.json
// for the CI perf gate (tools/check_bench_regression.py).
//
//   kernel_eval          one full flows+derivatives evaluation, reference
//                        DeferralKernel queries vs KernelPlan::evaluate
//   static_solve         nonlinear (gamma < 1) 12-period static FISTA solve,
//                        reference objective vs fused value_and_gradient
//   online_resolve       one online 1-D re-solve period, full-recompute
//                        golden section vs the incremental column updates
//   deferral_table_build fleet per-period DeferralTable, lag_weight calls
//                        vs the precomputed UniformLagWeightTable
//   fleet_shard_step     one shard simulating one period of a 20k-user day
//
// Every reference/fused pair is bitwise identical (tests/test_kernel_plan);
// the suite records wall time per side and the speedup ratio. Ratios are
// machine-independent and gate the ISSUE's speedup floors; absolute times
// are normalized by calibration_seconds (a fixed reference workload timed in
// the same process) before baseline comparison, so the 15% regression gate
// tolerates host-speed differences.
//
//   ./bench/bench_kernel_suite --out BENCH_kernel.json [--reps N]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/deferral_kernel.hpp"
#include "core/kernel_plan.hpp"
#include "core/paper_data.hpp"
#include "core/static_model.hpp"
#include "core/static_optimizer.hpp"
#include "dynamic/dynamic_model.hpp"
#include "dynamic/dynamic_optimizer.hpp"
#include "dynamic/online_pricer.hpp"
#include "fleet/fleet_driver.hpp"
#include "fleet/population.hpp"
#include "fleet/aggregator.hpp"
#include "fleet/shard.hpp"
#include "math/golden_section.hpp"
#include "math/piecewise_linear.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Time `fn()` `reps` times and return the total wall seconds. One untimed
/// warmup call populates lazy caches (plans, memo entries).
template <typename Fn>
double time_reps(std::size_t reps, Fn&& fn) {
  fn();
  const auto start = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) fn();
  return seconds_since(start);
}

void append_json_field(std::string& out, const char* key, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "\"%s\":%.17g", key, value);
  out += buffer;
}

struct BenchEntry {
  std::string name;
  std::vector<std::pair<std::string, double>> fields;
};

/// The paper's 12-period mix with concave (gamma < 1) reward sensitivity:
/// the configuration where the kernel cannot fall back to linear unit
/// tables, i.e. where the fused pow-hoisting actually pays.
tdp::StaticModel nonlinear_static_model() {
  return tdp::StaticModel(
      tdp::paper::make_profile(tdp::paper::table8_mix_12(),
                               tdp::paper::kStaticNormalizationReward,
                               tdp::LagNormalization::kDiscrete,
                               /*gamma=*/0.7),
      tdp::paper::kStaticCapacityUnits,
      tdp::math::PiecewiseLinearCost::hinge(tdp::paper::kStaticCostSlope,
                                            0.0));
}

tdp::DynamicModel nonlinear_dynamic_model() {
  return tdp::DynamicModel(
      tdp::paper::make_profile(tdp::paper::table8_mix_12(),
                               tdp::paper::kStaticNormalizationReward,
                               tdp::LagNormalization::kContinuous,
                               /*gamma=*/0.7),
      tdp::paper::kDynamicCapacityUnits,
      tdp::math::PiecewiseLinearCost::hinge(tdp::paper::kDynamicCostSlope,
                                            0.0));
}

tdp::math::Vector mid_rewards(std::size_t n, double level) {
  return tdp::math::Vector(n, level);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tdp;

  std::string out_path;
  std::size_t reps = 200;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    }
  }

  bench::banner("kernel_suite",
                "fused SoA kernel vs reference path microbenches");

  std::vector<BenchEntry> entries;

  // Calibration: a fixed reference workload whose cost tracks host speed.
  // Baseline comparisons divide wall times by this, so the regression gate
  // measures code changes, not machine changes.
  double calibration_seconds = 0.0;
  {
    const DeferralKernel kernel(
        paper::make_profile(paper::table8_mix_12(),
                            paper::kStaticNormalizationReward,
                            LagNormalization::kDiscrete, 0.7),
        LagConvention::kPeriodStart);
    const math::Vector rewards = mid_rewards(12, 0.8);
    double sink = 0.0;
    calibration_seconds = time_reps(50, [&] {
      for (std::size_t i = 0; i < 12; ++i) {
        sink += kernel.inflow(i, rewards[i]) + kernel.outflow(i, rewards);
      }
    });
    if (sink < 0.0) std::printf("?\n");  // keep the sink alive
  }

  // ---- kernel_eval: full flows + derivatives, reference vs plan ----------
  {
    const StaticModel model = nonlinear_static_model();
    const DeferralKernel& kernel = model.kernel();
    const std::size_t n = kernel.periods();
    const math::Vector rewards = mid_rewards(n, 0.8);

    double sink = 0.0;
    const double reference_seconds = time_reps(reps, [&] {
      // The per-iteration kernel work of the reference smoothed cost +
      // gradient: inflow, inflow derivative and outflow per period, plus
      // the n^2 pair-volume derivatives the gradient sums.
      for (std::size_t i = 0; i < n; ++i) {
        sink += kernel.inflow(i, rewards[i]);
        sink += kernel.inflow_derivative(i, rewards[i]);
        sink += kernel.outflow(i, rewards);
        for (std::size_t m = 0; m < n; ++m) {
          if (m == i) continue;
          sink += kernel.pair_volume_derivative(i, m, rewards[m]);
        }
      }
    });

    const auto plan = kernel.plan();
    FlowState state;
    const double fused_seconds = time_reps(reps, [&] {
      plan->evaluate(rewards, /*with_derivatives=*/true, state);
      sink += state.inflow[0];
    });
    if (sink < 0.0) std::printf("?\n");

    const double speedup = fused_seconds > 0.0
                               ? reference_seconds / fused_seconds
                               : 0.0;
    std::printf("  kernel_eval          ref %.3f ms  fused %.3f ms  (%.1fx)\n",
                1e3 * reference_seconds / static_cast<double>(reps),
                1e3 * fused_seconds / static_cast<double>(reps), speedup);
    bench::BenchReport report("kernel_eval");
    report.add("reps", static_cast<std::uint64_t>(reps));
    report.add("reference_seconds", reference_seconds);
    report.add("fused_seconds", fused_seconds);
    report.add("speedup", speedup);
    report.emit();
    entries.push_back({"kernel_eval",
                       {{"reference_seconds", reference_seconds},
                        {"fused_seconds", fused_seconds},
                        {"speedup", speedup}}});
  }

  // ---- static_solve: nonlinear FISTA solve, reference vs fused -----------
  {
    const StaticModel model = nonlinear_static_model();
    StaticOptimizerOptions reference_options;
    reference_options.fused = false;
    StaticOptimizerOptions fused_options;
    fused_options.fused = true;

    auto start = Clock::now();
    const PricingSolution reference =
        optimize_static_prices(model, reference_options);
    const double reference_seconds = seconds_since(start);

    start = Clock::now();
    const PricingSolution fused = optimize_static_prices(model, fused_options);
    const double fused_seconds = seconds_since(start);

    // The two solves are bitwise identical; any drift here is a bug.
    if (reference.total_cost != fused.total_cost) {
      std::fprintf(stderr,
                   "FATAL: fused static solve diverged from reference\n");
      return 1;
    }
    const double speedup =
        fused_seconds > 0.0 ? reference_seconds / fused_seconds : 0.0;
    std::printf("  static_solve         ref %.3f s   fused %.3f s   (%.1fx)\n",
                reference_seconds, fused_seconds, speedup);
    bench::BenchReport report("static_solve");
    report.add("reference_seconds", reference_seconds);
    report.add("fused_seconds", fused_seconds);
    report.add("speedup", speedup);
    report.add("iterations", static_cast<std::uint64_t>(fused.iterations));
    report.emit();
    entries.push_back({"static_solve",
                       {{"reference_seconds", reference_seconds},
                        {"fused_seconds", fused_seconds},
                        {"speedup", speedup}}});
  }

  // ---- online_resolve: one period's 1-D re-solve, ref vs incremental -----
  {
    const DynamicModel model = nonlinear_dynamic_model();
    const std::size_t n = model.periods();
    const double cap = model.reward_cap();
    math::Vector rewards = mid_rewards(n, 0.4);

    const std::size_t solve_reps = 24;  // two full days of period solves
    double sink = 0.0;
    std::size_t period = 0;
    const double reference_seconds = time_reps(solve_reps, [&] {
      // Reference online step: golden section where every candidate is a
      // full O(n^2) total_cost.
      const auto objective = [&](double candidate) {
        math::Vector probe = rewards;
        probe[period] = candidate;
        return model.total_cost(probe);
      };
      sink += math::minimize_golden_section(objective, 0.0, cap, 1e-7, 200).x;
      period = (period + 1) % n;
    });

    FlowState scratch;
    model.prime_flow_state(rewards, /*with_derivatives=*/false, scratch);
    period = 0;
    const double incremental_seconds = time_reps(solve_reps, [&] {
      const auto objective = [&](double candidate) {
        return model.total_cost_with_coordinate(period, candidate, scratch);
      };
      const double best =
          math::minimize_golden_section(objective, 0.0, cap, 1e-7, 200).x;
      // Leave the cached matrix at the original schedule, as the pricer
      // leaves it at the accepted reward.
      model.total_cost_with_coordinate(period, rewards[period], scratch);
      sink += best;
      period = (period + 1) % n;
    });
    if (sink < 0.0) std::printf("?\n");

    const double speedup = incremental_seconds > 0.0
                               ? reference_seconds / incremental_seconds
                               : 0.0;
    std::printf(
        "  online_resolve       ref %.3f ms  incr %.3f ms  (%.1fx)\n",
        1e3 * reference_seconds / static_cast<double>(solve_reps),
        1e3 * incremental_seconds / static_cast<double>(solve_reps), speedup);
    bench::BenchReport report("online_resolve");
    report.add("reps", static_cast<std::uint64_t>(solve_reps));
    report.add("reference_seconds", reference_seconds);
    report.add("incremental_seconds", incremental_seconds);
    report.add("speedup", speedup);
    report.emit();
    entries.push_back({"online_resolve",
                       {{"reference_seconds", reference_seconds},
                        {"incremental_seconds", incremental_seconds},
                        {"speedup", speedup}}});
  }

  // ---- deferral_table_build: fleet per-period table, ref vs table --------
  {
    fleet::PopulationConfig config;
    config.users = 1000;  // table cost is user-count independent
    config.periods = 48;
    const fleet::Population population(config);
    const std::size_t n = population.periods();
    const std::size_t classes = population.patience_classes();
    const math::Vector schedule = mid_rewards(n, 0.6);
    std::vector<const math::Vector*> schedules(classes, &schedule);

    double sink = 0.0;
    const std::size_t table_reps = 100;
    const double reference_seconds = time_reps(table_reps, [&] {
      // The pre-table construction loop: one lag_weight quadrature per
      // (class, lag).
      for (std::size_t c = 0; c < classes; ++c) {
        const WaitingFunction& w =
            *population.waiting(static_cast<std::uint32_t>(c));
        for (std::size_t lag = 1; lag < n; ++lag) {
          sink += lag_weight(w, schedule[(lag) % n], lag,
                             LagConvention::kUniformArrival);
        }
      }
    });
    const double table_seconds = time_reps(table_reps, [&] {
      const fleet::DeferralTable table(population, schedules, 0);
      sink += table.cumulative(0, 1);
    });
    if (sink < 0.0) std::printf("?\n");

    const double speedup =
        table_seconds > 0.0 ? reference_seconds / table_seconds : 0.0;
    std::printf(
        "  deferral_table_build ref %.3f ms  table %.3f ms (%.1fx)\n",
        1e3 * reference_seconds / static_cast<double>(table_reps),
        1e3 * table_seconds / static_cast<double>(table_reps), speedup);
    bench::BenchReport report("deferral_table_build");
    report.add("reps", static_cast<std::uint64_t>(table_reps));
    report.add("reference_seconds", reference_seconds);
    report.add("table_seconds", table_seconds);
    report.add("speedup", speedup);
    report.emit();
    entries.push_back({"deferral_table_build",
                       {{"reference_seconds", reference_seconds},
                        {"table_seconds", table_seconds},
                        {"speedup", speedup}}});
  }

  // ---- fleet_shard_step: one shard, one period, 20k users ---------------
  {
    fleet::PopulationConfig config;
    config.users = 20000;
    config.periods = 48;
    const fleet::Population population(config);
    const std::size_t classes = population.patience_classes();
    const math::Vector schedule = mid_rewards(population.periods(), 0.6);
    std::vector<const math::Vector*> schedules(classes, &schedule);
    const fleet::DeferralTable table(population, schedules, 0);

    fleet::Shard shard(population, 0, 1, 1);  // one slice covering all users
    fleet::StripedAggregator aggregator(1, population.periods());
    double sink = 0.0;
    const std::size_t shard_reps = 10;
    const double shard_seconds = time_reps(shard_reps, [&] {
      shard.simulate_period(0, 0, table, aggregator);
      sink += aggregator.stripe(0, 0).offered_work;
    });
    if (sink < 0.0) std::printf("?\n");

    std::printf("  fleet_shard_step     %.3f ms per 20k-user period\n",
                1e3 * shard_seconds / static_cast<double>(shard_reps));
    bench::BenchReport report("fleet_shard_step");
    report.add("reps", static_cast<std::uint64_t>(shard_reps));
    report.add("users", static_cast<std::uint64_t>(config.users));
    report.add("shard_seconds", shard_seconds);
    report.emit();
    entries.push_back(
        {"fleet_shard_step", {{"shard_seconds", shard_seconds}}});
  }

  // ---- BENCH_kernel.json --------------------------------------------------
  if (!out_path.empty()) {
    std::string json = "{\n  \"schema\": 1,\n  ";
    append_json_field(json, "calibration_seconds", calibration_seconds);
    json += ",\n  \"benches\": {\n";
    for (std::size_t e = 0; e < entries.size(); ++e) {
      json += "    \"" + entries[e].name + "\": {";
      for (std::size_t f = 0; f < entries[e].fields.size(); ++f) {
        if (f) json += ", ";
        append_json_field(json, entries[e].fields[f].first.c_str(),
                          entries[e].fields[f].second);
      }
      json += e + 1 < entries.size() ? "},\n" : "}\n";
    }
    json += "  }\n}\n";
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << json;
    std::printf("  wrote %s\n", out_path.c_str());
  }
  return 0;
}
