// Figure 12: TDP traffic for both user groups on the TUBE testbed,
// exercising the full control loop: TIP measurement -> TDP control trials
// -> waiting-function profiling -> online-optimized prices.
//
// Paper: "user 1 never defers due to high patience indices ... user 2
// defers; total traffic volume moved by TDP is 143.2 MB for web traffic,
// 707.8 MB for ftp, and 8460.7 MB for streaming video."
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/logging.hpp"
#include "tube/tube_system.hpp"

int main() {
  using namespace tdp;
  set_log_level(LogLevel::kError);
  bench::banner("Fig. 12", "TUBE testbed, TDP traffic for both users");

  TubeSystem tube;
  tube.run_tip(2);
  // Control trials with varied rewards provide the estimation windows.
  Rng rng(77);
  for (int trial = 0; trial < 3; ++trial) {
    math::Vector rewards(12);
    for (double& p : rewards) p = rng.uniform(0.0, 0.01);
    tube.run_trial(rewards, 2);
  }
  const auto opt = tube.run_optimized(2);

  TextTable traffic({"Period", "User 1 (MB)", "User 2 (MB)"});
  for (std::size_t i = 0; i < 12; ++i) {
    traffic.add_row({std::to_string(i + 1),
                     TextTable::num(opt.user_period_mb[0][i], 0),
                     TextTable::num(opt.user_period_mb[1][i], 0)});
  }
  bench::print_table(traffic);

  const char* class_names[3] = {"web", "ftp", "video"};
  std::printf("\nTraffic volume moved by TDP (per phase):\n");
  TextTable moved({"User", "Class", "Moved (MB)", "Total (MB)"});
  for (std::size_t u = 0; u < 2; ++u) {
    for (std::size_t c = 0; c < 3; ++c) {
      moved.add_row({std::to_string(u + 1), class_names[c],
                     TextTable::num(opt.class_deferred_mb[u][c], 1),
                     TextTable::num(opt.class_total_mb[u][c], 1)});
    }
  }
  bench::print_table(moved);

  std::printf("\n");
  bench::paper_vs_measured(
      "user 2 moves video >> ftp > web", "8460.7 / 707.8 / 143.2 MB",
      TextTable::num(opt.class_deferred_mb[1][2], 0) + " / " +
          TextTable::num(opt.class_deferred_mb[1][1], 0) + " / " +
          TextTable::num(opt.class_deferred_mb[1][0], 0) + " MB");
  const double u1_moved = opt.class_deferred_mb[0][0] +
                          opt.class_deferred_mb[0][1] +
                          opt.class_deferred_mb[0][2];
  bench::paper_vs_measured("user 1 (impatient) never defers", "~0 MB",
                           TextTable::num(u1_moved, 1) + " MB");
  bench::paper_vs_measured(
      "flexible user is billed less", "lower bill + rewards",
      "bills $" + TextTable::num(opt.user_bill_dollars[0], 2) + " vs $" +
          TextTable::num(opt.user_bill_dollars[1], 2) + "; rewards $" +
          TextTable::num(opt.user_reward_dollars[0], 2) + " vs $" +
          TextTable::num(opt.user_reward_dollars[1], 2));
  std::printf("  final published rewards ($/MB):");
  for (double p : opt.rewards) std::printf(" %.4f", p);
  std::printf("\n");
  return 0;
}
