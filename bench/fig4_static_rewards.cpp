// Figure 4: optimal rewards for the 48-period static session model.
// "Rewards have an upper bound of $0.15"; "almost all of the periods with
// nonzero rewards are also under capacity with TIP"; the period-4 two-stage
// transfer effect.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "core/metrics.hpp"
#include "core/paper_data.hpp"
#include "core/static_optimizer.hpp"

int main() {
  using namespace tdp;
  bench::banner("Fig. 4", "optimal rewards, static session model (48p)");

  const StaticModel model = paper::static_model_48();
  const PricingSolution sol = optimize_static_prices(model);
  const auto tip = model.demand().tip_demand_vector();

  TextTable table({"Period", "TIP demand (MBps)", "Reward ($)",
                   "TDP usage (MBps)", "vs capacity (180)"});
  for (std::size_t i = 0; i < 48; ++i) {
    table.add_row({std::to_string(i + 1),
                   TextTable::num(to_mbps(tip[i]), 0),
                   TextTable::num(to_dollars(sol.rewards[i]), 4),
                   TextTable::num(to_mbps(sol.usage[i]), 1),
                   tip[i] > paper::kStaticCapacityUnits ? "over" : "under"});
  }
  bench::print_table(table);

  double max_reward = 0.0;
  std::size_t nonzero = 0;
  std::size_t nonzero_under = 0;
  for (std::size_t i = 0; i < 48; ++i) {
    max_reward = std::max(max_reward, sol.rewards[i]);
    if (sol.rewards[i] > 1e-3) {
      ++nonzero;
      if (tip[i] <= paper::kStaticCapacityUnits) ++nonzero_under;
    }
  }
  std::printf("\n");
  bench::paper_vs_measured("reward upper bound", "$0.15",
                           "max observed $" +
                               TextTable::num(to_dollars(max_reward), 4) +
                               " (cap $0.15 never binds)");
  bench::paper_vs_measured(
      "nonzero rewards in under-capacity periods", "almost all",
      std::to_string(nonzero_under) + " of " + std::to_string(nonzero));
  bench::paper_vs_measured(
      "p4 (two-stage transfer near over-capacity 1-3)",
      "$0.023 > 0",
      "$" + TextTable::num(to_dollars(sol.rewards[3]), 4) +
          ", period-4 TIP demand 200 MBps");
  std::printf("\n  solver: %zu FISTA iterations, converged=%d\n",
              sol.iterations, static_cast<int>(sol.converged));
  return 0;
}
