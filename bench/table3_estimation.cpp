// Table III + Fig. 2: waiting-function estimation on the paper's 3-period,
// 2-type example. Reproduces the actual-vs-estimated parameter table (with
// the characteristic alpha misidentification) and the period-1 waiting
// function comparison, then demonstrates the TIP-baseline re-estimation
// iteration (eq. 9).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "estimation/tip_estimator.hpp"
#include "estimation/wf_estimator.hpp"

namespace {

tdp::PatienceMix table3_truth() {
  tdp::PatienceMix truth(3, 2, 1.0);
  truth.set(0, 0, 0.17, 1.0);
  truth.set(0, 1, 0.83, 2.0);
  truth.set(1, 0, 0.50, 1.0);
  truth.set(1, 1, 0.50, 2.33);
  truth.set(2, 0, 0.83, 1.0);
  truth.set(2, 1, 0.17, 2.67);
  return truth;
}

double max_percent_error(const tdp::PatienceMix& truth,
                         const tdp::PatienceMix& fitted, std::size_t period) {
  double worst = 0.0;
  for (std::size_t k = 0; k < 3; ++k) {
    if (k == period) continue;
    for (double p = 0.1; p <= 1.001; p += 0.1) {
      const double actual = truth.omega(period, k, p);
      if (actual < 1e-12) continue;
      worst = std::max(worst, 100.0 * std::abs(actual - fitted.omega(
                                                            period, k, p)) /
                                  actual);
    }
  }
  return worst;
}

}  // namespace

int main() {
  using namespace tdp;
  bench::banner("Table III / Fig. 2", "waiting-function estimation");

  const PatienceMix truth = table3_truth();
  const std::vector<double> demand = {22.0, 13.0, 8.0};
  const WaitingFunctionEstimator estimator(3, 2, 1.0);

  // "We generate data for the estimation by evaluating (8) at sets of
  // offered rewards p_i in [0, 1]."
  Rng rng(2011);
  std::vector<EstimationDataset> data;
  for (int d = 0; d < 60; ++d) {
    math::Vector rewards(3);
    for (double& p : rewards) p = rng.uniform(0.0, 1.0);
    data.push_back(estimator.synthesize(truth, demand, rewards));
  }

  const auto fit = estimator.estimate_reduced3(demand, data);
  TextTable table({"Period", "b1 act", "b2 act", "a1 act", "b1 est",
                   "b2 est", "a1 est", "max % err (paper)"});
  const char* paper_err[3] = {"11.8", "9.0", "0.5"};
  for (std::size_t i = 0; i < 3; ++i) {
    table.add_row({std::to_string(i + 1),
                   TextTable::num(truth.beta(i, 0), 2),
                   TextTable::num(truth.beta(i, 1), 2),
                   TextTable::num(truth.alpha(i, 0), 2),
                   TextTable::num(fit.mix.beta(i, 0), 2),
                   TextTable::num(fit.mix.beta(i, 1), 2),
                   TextTable::num(fit.mix.alpha(i, 0), 2),
                   TextTable::num(max_percent_error(truth, fit.mix, i), 1) +
                       " (" + paper_err[i] + ")"});
  }
  bench::print_table(table);
  bench::paper_vs_measured("worst-period waiting-function error", "< 12%",
                           "see rightmost column");

  std::printf("\nFig. 2 — period 1 waiting function, actual vs estimated"
              " (reward p = 0.5, lag 1 and 2):\n");
  TextTable fig2({"lag", "actual w", "estimated w"});
  for (std::size_t k = 1; k < 3; ++k) {
    fig2.add_row({std::to_string(k),
                  TextTable::num(truth.omega(0, k, 0.5), 4),
                  TextTable::num(fit.mix.omega(0, k, 0.5), 4)});
  }
  bench::print_table(fig2);

  // The baseline-iteration step: recover X_i from TDP usage alone.
  std::vector<TipObservation> windows;
  for (int d = 0; d < 6; ++d) {
    math::Vector rewards(3);
    for (double& p : rewards) p = rng.uniform(0.2, 1.0);
    windows.push_back({rewards, predict_tdp_usage(truth, demand, rewards)});
  }
  const math::Vector recovered = estimate_tip_baseline(fit.mix, windows);
  std::printf("\nTIP baseline re-estimation (eq. 9), actual {22, 13, 8}:\n");
  std::printf("  recovered X = {%.2f, %.2f, %.2f} (using estimated waiting"
              " functions)\n",
              recovered[0], recovered[1], recovered[2]);
  return 0;
}
