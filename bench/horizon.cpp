// Long-horizon bench: wall time of the multi-day control loop (online §IV
// re-estimation in the loop, drift active) plus the checkpoint codec cost,
// emitting BENCH_JSON lines and a machine-readable BENCH_horizon.json for
// the CI perf gate (tools/check_bench_regression.py --suite horizon).
//
//   horizon_run        warmup + measured days of the MultiDayDriver at fleet
//                      scale, estimation + re-anchoring every day, patience
//                      drift injected so the estimator has work to do
//   checkpoint_codec   encode/decode of the end-of-run checkpoint and one
//                      full restore (population rebuild + model re-solve)
//
// The run also re-executes the kill-and-restore contract once at bench
// scale: the second half of the horizon simulated from a mid-run checkpoint
// must reproduce the uninterrupted day metrics bitwise (the enforced
// version lives in tests/test_horizon.cpp); a mismatch fails the bench.
//
// Absolute times are normalized by calibration_seconds (the same fixed
// reference workload as bench_kernel_suite, timed in this process) before
// baseline comparison, so the regression gate measures code changes rather
// than host-speed changes.
//
//   ./bench/bench_horizon [--out BENCH_horizon.json] [--users N] [--days N]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/deferral_kernel.hpp"
#include "core/paper_data.hpp"
#include "horizon/checkpoint.hpp"
#include "horizon/multi_day_driver.hpp"
#include "math/matrix.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

template <typename Fn>
double time_reps(std::size_t reps, Fn&& fn) {
  fn();
  const auto start = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) fn();
  return seconds_since(start);
}

void append_json_field(std::string& out, const char* key, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "\"%s\":%.17g", key, value);
  out += buffer;
}

struct BenchEntry {
  std::string name;
  std::vector<std::pair<std::string, double>> fields;
};

tdp::horizon::HorizonConfig bench_config(std::uint64_t users,
                                         std::size_t days) {
  tdp::horizon::HorizonConfig config;
  config.population.users = users;
  config.population.periods = 48;
  config.population.seed = 20110611;
  config.shards = 32;
  config.warmup_days = 1;
  config.horizon_days = days;
  config.estimation_window = 4;
  config.estimation_min_days = 2;
  config.estimation_starts = 2;
  // Mild chaos so degraded paths stay on the measured profile, plus drift
  // so the estimator/re-anchor work is exercised every day.
  config.fault.price_pull_drop = 0.02;
  config.fault.measurement_loss = 0.02;
  config.fault.drift_beta_rate = 0.01;
  config.fault.seed = 424242;
  return config;
}

bool days_bitwise_equal(const std::vector<tdp::horizon::DayMetrics>& a,
                        const std::vector<tdp::horizon::DayMetrics>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t d = 0; d < a.size(); ++d) {
    if (a[d].rewards != b[d].rewards) return false;
    if (a[d].offered_units != b[d].offered_units) return false;
    if (a[d].realized_units != b[d].realized_units) return false;
    if (a[d].sessions != b[d].sessions) return false;
    if (a[d].deferred_sessions != b[d].deferred_sessions) return false;
    if (a[d].beta_estimate != b[d].beta_estimate) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tdp;

  std::string out_path;
  std::uint64_t users = 20000;
  std::size_t days = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      users = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      days = static_cast<std::size_t>(
          std::strtoull(argv[++i], nullptr, 10));
    }
  }

  bench::banner("horizon",
                "multi-day online estimation loop + checkpoint codec");

  std::vector<BenchEntry> entries;

  // Calibration: the same fixed reference workload as bench_kernel_suite,
  // so both suites' baselines normalize host speed identically.
  double calibration_seconds = 0.0;
  {
    const DeferralKernel kernel(
        paper::make_profile(paper::table8_mix_12(),
                            paper::kStaticNormalizationReward,
                            LagNormalization::kDiscrete, 0.7),
        LagConvention::kPeriodStart);
    const math::Vector rewards(12, 0.8);
    double sink = 0.0;
    calibration_seconds = time_reps(50, [&] {
      for (std::size_t i = 0; i < 12; ++i) {
        sink += kernel.inflow(i, rewards[i]) + kernel.outflow(i, rewards);
      }
    });
    if (sink < 0.0) std::printf("?\n");  // keep the sink alive
  }

  const horizon::HorizonConfig config = bench_config(users, days);

  // ---- horizon_run: the full multi-day loop -------------------------------
  horizon::HorizonMetrics metrics;
  std::vector<std::uint8_t> mid_bytes;
  std::size_t mid_kill_step = 0;
  {
    bench::BenchReport report("horizon_run");
    horizon::MultiDayDriver driver(config);
    // Checkpoint once mid-horizon (the kill point for the restore check).
    const std::size_t total_steps =
        (config.warmup_days + config.horizon_days) *
        config.population.periods;
    mid_kill_step = total_steps / 2;
    const auto start = Clock::now();
    for (std::size_t step = 0; step < total_steps; ++step) {
      if (step == mid_kill_step) mid_bytes = driver.checkpoint_bytes();
      driver.step_period();
    }
    const double loop_seconds = seconds_since(start);
    metrics = driver.metrics();

    double estimates = 0.0;
    for (const auto& d : metrics.days) {
      if (d.estimated) estimates += 1.0;
    }
    report.add("users", static_cast<std::uint64_t>(users));
    report.add("periods",
               static_cast<std::uint64_t>(config.population.periods));
    report.add("days", static_cast<std::uint64_t>(metrics.days.size()));
    report.add("horizon_wall_seconds", loop_seconds);
    report.add("estimates", estimates);
    report.add("final_beta",
               metrics.days.empty() ? 0.0
                                    : metrics.days.back().beta_estimate);
    report.emit();
    entries.push_back(
        {"horizon_run", {{"horizon_wall_seconds", loop_seconds}}});

    const double day_ms =
        1e3 * loop_seconds /
        static_cast<double>(config.warmup_days + config.horizon_days);
    std::printf("  horizon_run        %zu days x %llu users: %.3f s "
                "(%.1f ms/day), %g estimates\n",
                config.warmup_days + config.horizon_days,
                static_cast<unsigned long long>(users), loop_seconds,
                day_ms, estimates);
  }

  // ---- kill-and-restore contract at bench scale ---------------------------
  {
    std::unique_ptr<horizon::MultiDayDriver> restored =
        horizon::MultiDayDriver::restore(config, mid_bytes);
    while (!restored->done()) restored->step_period();
    const horizon::HorizonMetrics resumed = restored->metrics();
    if (!days_bitwise_equal(metrics.days, resumed.days)) {
      std::printf("  ERROR: restored run diverged from the uninterrupted "
                  "run (kill step %zu)\n",
                  mid_kill_step);
      return 1;
    }
    std::printf("  restore check      resumed run bit-identical: yes\n");
  }

  // ---- checkpoint_codec: encode / decode / restore ------------------------
  {
    bench::BenchReport report("checkpoint_codec");
    horizon::MultiDayDriver driver(config);
    driver.run_day();  // a warmed checkpoint with ring + window state
    driver.run_day();
    const horizon::CheckpointData data = driver.checkpoint();
    const std::vector<std::uint8_t> bytes = horizon::encode(data);

    const std::size_t reps = 100;
    const double encode_seconds =
        time_reps(reps, [&] { (void)horizon::encode(data); });
    const double decode_seconds =
        time_reps(reps, [&] { (void)horizon::decode(bytes); });
    const auto restore_start = Clock::now();
    std::unique_ptr<horizon::MultiDayDriver> restored =
        horizon::MultiDayDriver::restore(config, bytes);
    const double restore_seconds = seconds_since(restore_start);
    (void)restored;

    report.add("checkpoint_bytes",
               static_cast<std::uint64_t>(bytes.size()));
    report.add("reps", static_cast<std::uint64_t>(reps));
    report.add("encode_seconds", encode_seconds);
    report.add("decode_seconds", decode_seconds);
    report.add("restore_wall_seconds", restore_seconds);
    report.emit();
    entries.push_back({"checkpoint_codec",
                       {{"encode_seconds", encode_seconds},
                        {"decode_seconds", decode_seconds},
                        {"restore_wall_seconds", restore_seconds}}});

    std::printf("  checkpoint_codec   %zu bytes, encode %.3f ms, decode "
                "%.3f ms, restore %.3f s\n",
                bytes.size(), 1e3 * encode_seconds / reps,
                1e3 * decode_seconds / reps, restore_seconds);
  }

  // ---- BENCH_horizon.json -------------------------------------------------
  if (!out_path.empty()) {
    std::string json = "{\n  \"schema\": 1,\n  ";
    append_json_field(json, "calibration_seconds", calibration_seconds);
    json += ",\n  \"benches\": {\n";
    for (std::size_t e = 0; e < entries.size(); ++e) {
      json += "    \"" + entries[e].name + "\": {";
      for (std::size_t f = 0; f < entries[e].fields.size(); ++f) {
        if (f) json += ", ";
        append_json_field(json, entries[e].fields[f].first.c_str(),
                          entries[e].fields[f].second);
      }
      json += e + 1 < entries.size() ? "},\n" : "}\n";
    }
    json += "  }\n}\n";
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << json;
    std::printf("  wrote %s\n", out_path.c_str());
  }
  return 0;
}
