// Ablations for the design choices DESIGN.md calls out:
//  A1  FISTA acceleration vs plain projected gradient
//  A2  smoothing continuation vs solving a single fixed mu
//  A3  smoothing accuracy: objective gap vs mu
//  A4  carry-over on/off: what the dynamic model adds over the static one
//  A5  fluid-vs-stochastic optimality gap at the dynamic optimum
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "core/paper_data.hpp"
#include "core/static_optimizer.hpp"
#include "dynamic/dynamic_optimizer.hpp"
#include "dynamic/paper_dynamic.hpp"
#include "dynamic/stochastic_sim.hpp"

namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace tdp;
  bench::banner("Ablations", "design-choice studies");

  const StaticModel model = paper::static_model_48();

  // A1: acceleration.
  {
    StaticOptimizerOptions accel;
    StaticOptimizerOptions plain;
    plain.fista.accelerated = false;
    plain.fista.max_iterations = 20000;
    auto t0 = std::chrono::steady_clock::now();
    const auto fast = optimize_static_prices(model, accel);
    const double fast_s = seconds_since(t0);
    t0 = std::chrono::steady_clock::now();
    const auto slow = optimize_static_prices(model, plain);
    const double slow_s = seconds_since(t0);
    std::printf("\nA1  FISTA vs plain projected gradient (48p static):\n");
    TextTable t({"Solver", "Iterations", "Time (s)", "Final cost"});
    t.add_row({"FISTA", std::to_string(fast.iterations),
               TextTable::num(fast_s, 3), TextTable::num(fast.total_cost, 4)});
    t.add_row({"PGD", std::to_string(slow.iterations),
               TextTable::num(slow_s, 3), TextTable::num(slow.total_cost, 4)});
    bench::print_table(t);
  }

  // A2/A3: continuation vs fixed mu.
  {
    std::printf("\nA2/A3  smoothing continuation vs fixed mu:\n");
    TextTable t({"Schedule", "Iterations", "Exact cost",
                 "gap vs best (money units)"});
    StaticOptimizerOptions continuation;
    const auto best = optimize_static_prices(model, continuation);
    t.add_row({"continuation 1 -> 1e-5", std::to_string(best.iterations),
               TextTable::num(best.total_cost, 4), "0 (reference)"});
    for (double mu : {1.0, 0.1, 1e-3, 1e-5}) {
      StaticOptimizerOptions fixed;
      fixed.mu_initial = mu;
      fixed.mu_final = mu;
      const auto sol = optimize_static_prices(model, fixed);
      t.add_row({"fixed mu = " + TextTable::num(mu, 5),
                 std::to_string(sol.iterations),
                 TextTable::num(sol.total_cost, 4),
                 TextTable::num(sol.total_cost - best.total_cost, 4)});
    }
    bench::print_table(t);
  }

  // A4: carry-over on/off.
  {
    std::printf("\nA4  carry-over ablation (same inputs, A = 210 MBps):\n");
    // Static view of the dynamic inputs: cost per period with no backlog
    // memory vs the dynamic steady state.
    DemandProfile profile = paper::make_profile(
        paper::table7_mix_48(), paper::kStaticNormalizationReward,
        LagNormalization::kContinuous);
    const StaticModel static_like(
        profile, paper::kDynamicCapacityUnits,
        math::PiecewiseLinearCost::hinge(paper::kDynamicCostSlope));
    const auto static_sol = optimize_static_prices(static_like);
    const DynamicModel dynamic = paper::dynamic_model_48();
    const auto dynamic_sol = optimize_dynamic_prices(dynamic);
    TextTable t({"Model", "TIP cost", "TDP cost", "Savings (%)",
                 "Max reward"});
    double ms = 0.0;
    double md = 0.0;
    for (double p : static_sol.rewards) ms = std::max(ms, p);
    for (double p : dynamic_sol.rewards) md = std::max(md, p);
    t.add_row({"no carry-over (static)",
               TextTable::num(static_sol.tip_cost, 1),
               TextTable::num(static_sol.total_cost, 1),
               TextTable::num(100.0 * (static_sol.tip_cost -
                                       static_sol.total_cost) /
                                  std::max(static_sol.tip_cost, 1e-9),
                              1),
               TextTable::num(ms, 3)});
    t.add_row({"carry-over (dynamic)",
               TextTable::num(dynamic_sol.tip_cost, 1),
               TextTable::num(dynamic_sol.evaluation.total_cost, 1),
               TextTable::num(100.0 * (dynamic_sol.tip_cost -
                                       dynamic_sol.evaluation.total_cost) /
                                  dynamic_sol.tip_cost,
                              1),
               TextTable::num(md, 3)});
    bench::print_table(t);
    std::printf("  carry-over amplifies both the TIP cost and the value of "
                "deferral\n");

    // A5: fluid vs stochastic at the dynamic optimum.
    std::printf("\nA5  fluid-optimal rewards evaluated stochastically:\n");
    StochasticSimOptions options;
    options.days = 50;
    const auto stoch =
        simulate_stochastic(dynamic, dynamic_sol.rewards, options);
    TextTable t5({"Metric", "Fluid model", "Stochastic sessions"});
    t5.add_row({"reward cost/day",
                TextTable::num(dynamic_sol.evaluation.reward_cost, 1),
                TextTable::num(stoch.mean_reward_cost, 1)});
    t5.add_row({"backlog cost/day",
                TextTable::num(dynamic_sol.evaluation.backlog_cost, 1),
                TextTable::num(stoch.mean_backlog_cost, 1)});
    bench::print_table(t5);
    std::printf(
        "  the fluid optimum runs the link at its capacity knife edge, so\n"
        "  Poisson/exponential variance re-creates backlog the fluid model\n"
        "  ignores — the gap a field deployment must budget for (and one\n"
        "  reason the paper keeps a 'cushion of excess capacity').\n");
  }
  return 0;
}
