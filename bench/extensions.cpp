// Extension studies beyond the main evaluation:
//  X1  definite-choice users (Appendix D) vs the probabilistic model
//  X2  fixed-duration (streaming) sessions (Appendix G)
//  X3  two-period TDP vs n-period TDP (the intro's inadequacy claim)
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/definite_choice.hpp"
#include "core/metrics.hpp"
#include "core/paper_data.hpp"
#include "core/static_optimizer.hpp"
#include "core/two_period.hpp"
#include "dynamic/fixed_duration.hpp"

int main() {
  using namespace tdp;
  bench::banner("Extensions", "Appendix D / Appendix G / 2-period TDP");

  // X1: definite choice vs probabilistic, on a small heterogeneous day.
  {
    std::printf("\nX1  definite-choice (Appendix D) vs probabilistic "
                "deferral:\n");
    DemandProfile demand(6);
    auto patient = std::make_shared<PowerLawWaitingFunction>(0.5, 6, 1.0);
    auto moderate = std::make_shared<PowerLawWaitingFunction>(2.0, 6, 1.0);
    const double volumes[6] = {12, 4, 2, 5, 9, 14};
    for (std::size_t i = 0; i < 6; ++i) {
      demand.add_class(i, {patient, 0.5 * volumes[i]});
      demand.add_class(i, {moderate, 0.5 * volumes[i]});
    }
    const StaticModel probabilistic(demand, 8.0,
                                    math::PiecewiseLinearCost::hinge(2.0));
    const DefiniteChoiceModel definite(demand, 8.0,
                                       math::PiecewiseLinearCost::hinge(2.0));
    const PricingSolution prob_sol = optimize_static_prices(probabilistic);
    const DefiniteChoiceSolution def_sol = optimize_definite_choice(definite);

    TextTable t({"Model", "TIP cost", "TDP cost", "Savings (%)",
                 "Guarantee"});
    t.add_row({"probabilistic (Sec. II)",
               TextTable::num(prob_sol.tip_cost, 2),
               TextTable::num(prob_sol.total_cost, 2),
               TextTable::num(100.0 * (prob_sol.tip_cost -
                                       prob_sol.total_cost) /
                                  prob_sol.tip_cost,
                              1),
               "global (convex)"});
    t.add_row({"definite choice (App. D)",
               TextTable::num(def_sol.tip_cost, 2),
               TextTable::num(def_sol.total_cost, 2),
               TextTable::num(100.0 * (def_sol.tip_cost -
                                       def_sol.total_cost) /
                                  def_sol.tip_cost,
                              1),
               "local only (non-convex)"});
    bench::print_table(t);
    std::printf("  all-or-nothing deferral overshoots: any attractive "
                "reward moves whole\n  classes at once, so fine-grained "
                "leveling is impossible — the paper's\n  reason for "
                "preferring the probabilistic model.\n");
  }

  // X2: fixed-duration sessions.
  {
    std::printf("\nX2  fixed-duration (streaming) sessions, Appendix G:\n");
    DemandProfile arrivals(12);
    auto patient = std::make_shared<PowerLawWaitingFunction>(
        0.5, 12, 1.0, 1.0, LagNormalization::kContinuous);
    auto impatient = std::make_shared<PowerLawWaitingFunction>(
        4.5, 12, 1.0, 1.0, LagNormalization::kContinuous);
    const auto tip12 = paper::table9_demand_12();
    for (std::size_t i = 0; i < 12; ++i) {
      arrivals.add_class(i, {patient, 0.4 * tip12[i]});
      arrivals.add_class(i, {impatient, 0.6 * tip12[i]});
    }
    const FixedDurationModel model(std::move(arrivals),
                                   /*departure rate=*/1.2,
                                   /*capacity=*/15.0,
                                   math::PiecewiseLinearCost::hinge(1.0));
    const FixedDurationSolution sol = optimize_fixed_duration_prices(model);
    const auto tip_ev = model.evaluate(math::Vector(12, 0.0));
    TextTable t({"Period", "TIP mean demand", "TDP mean demand",
                 "Reward"});
    for (std::size_t i = 0; i < 12; ++i) {
      t.add_row({std::to_string(i + 1),
                 TextTable::num(tip_ev.mean_demand[i], 2),
                 TextTable::num(sol.evaluation.mean_demand[i], 2),
                 TextTable::num(sol.rewards[i], 3)});
    }
    bench::print_table(t);
    std::printf("  quality-degradation cost: %.2f (TIP) -> %.2f (TDP); "
                "converged=%d\n",
                tip_ev.quality_cost, sol.evaluation.quality_cost,
                static_cast<int>(sol.converged));
  }

  // X3: two-period TDP on the 48-period day.
  {
    std::printf("\nX3  two-period TDP vs 48-period TDP:\n");
    const StaticModel model = paper::static_model_48();
    const TwoPeriodSolution two = optimize_two_period_prices(model);
    const PricingSolution full = optimize_static_prices(model);
    const auto tip = model.demand().tip_demand_vector();
    TextTable t({"Scheme", "Cost", "Savings (%)", "Spread ratio"});
    t.add_row({"flat (TIP)", TextTable::num(two.tip_cost, 1), "0.0",
               "1.000"});
    t.add_row({"2-period (day/evening)", TextTable::num(two.total_cost, 1),
               TextTable::num(100.0 * (two.tip_cost - two.total_cost) /
                                  two.tip_cost,
                              1),
               TextTable::num(residue_spread(two.usage) /
                                  residue_spread(tip),
                              3)});
    t.add_row({"48-period (this paper)", TextTable::num(full.total_cost, 1),
               TextTable::num(100.0 * (full.tip_cost - full.total_cost) /
                                  full.tip_cost,
                              1),
               TextTable::num(residue_spread(full.usage) /
                                  residue_spread(tip),
                              3)});
    bench::print_table(t);
    std::printf("  off-peak threshold %.0f MBps, off-peak reward $%.3f — "
                "one price level\n  cannot chase multiple peaks and "
                "valleys: \"2 period TDP [is] inadequate\".\n",
                10.0 * two.demand_threshold, 0.1 * two.off_peak_reward);
  }
  return 0;
}
