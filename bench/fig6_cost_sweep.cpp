// Figure 6: residue spread under TDP versus the cost of exceeding capacity
// a * f(x). "Residue spread decreases sharply for a in [0.1, 10], then
// levels out for a >= 10. For a >= 10, demand never exceeds capacity."
//
// The sweep points are independent instances of the same convex program, so
// they run through the parallel BatchSolver (results are bit-identical for
// any thread count; set TDP_THREADS=1 for the serial baseline).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/batch_solver.hpp"
#include "core/metrics.hpp"
#include "core/paper_data.hpp"
#include "core/static_optimizer.hpp"

int main() {
  using namespace tdp;
  bench::banner("Fig. 6", "residue spread vs cost of exceeding capacity");
  bench::BenchReport report("fig6_cost_sweep");

  const auto base_cost = math::PiecewiseLinearCost::hinge(3.0);
  TextTable table({"a", "log10(a)", "Residue spread (unit-periods)",
                   "Max over-capacity (units)", "Savings (%)"});

  std::vector<double> log_as;
  for (double log_a = -2.0; log_a <= 2.01; log_a += 0.5) {
    log_as.push_back(log_a);
  }

  // Waiting functions stay FIXED at the calibrated baseline while only
  // the capacity cost scales — scaling both would merely change money
  // units and leave the optimum invariant.
  std::vector<StaticModel> models;
  models.reserve(log_as.size());
  for (double log_a : log_as) {
    models.emplace_back(
        paper::make_profile(paper::table7_mix_48(),
                            paper::kStaticNormalizationReward),
        paper::kStaticCapacityUnits,
        base_cost.scaled(std::pow(10.0, log_a)));
  }

  // Warm-starting would still land within the solver tolerance (~1e-6) of
  // the cold-start optimum, but the paper-reproduction benches keep the
  // cold start so every number is bit-identical to the single-solve path.
  BatchSolveOptions batch;
  batch.warm_start = false;
  BatchSolver solver(batch);
  const std::vector<PricingSolution> solutions = solver.solve(models);

  double spread_at_tenth = 0.0;
  double spread_at_ten = 0.0;
  double spread_at_hundred = 0.0;
  for (std::size_t k = 0; k < log_as.size(); ++k) {
    const double log_a = log_as[k];
    const double a = std::pow(10.0, log_a);
    const PricingSolution& sol = solutions[k];
    const double spread = residue_spread(sol.usage);
    double max_over = 0.0;
    for (double x : sol.usage) {
      max_over = std::max(max_over, x - paper::kStaticCapacityUnits);
    }
    const double savings =
        sol.tip_cost > 0.0
            ? 100.0 * (sol.tip_cost - sol.total_cost) / sol.tip_cost
            : 0.0;
    table.add_row({TextTable::num(a, 2), TextTable::num(log_a, 1),
                   TextTable::num(spread, 1), TextTable::num(max_over, 2),
                   TextTable::num(savings, 1)});
    if (std::abs(log_a + 1.0) < 0.01) spread_at_tenth = spread;
    if (std::abs(log_a - 1.0) < 0.01) spread_at_ten = spread;
    if (std::abs(log_a - 2.0) < 0.01) spread_at_hundred = spread;
  }
  bench::print_table(table);
  bench::report_batch(solver.last_timing());

  std::printf("\n");
  bench::paper_vs_measured("sharp decrease over a in [0.1, 10]",
                           "sharp drop",
                           TextTable::num(spread_at_tenth, 1) + " -> " +
                               TextTable::num(spread_at_ten, 1));
  bench::paper_vs_measured(
      "levels out for a >= 10 (never fully even)", "plateau > 0",
      TextTable::num(spread_at_ten, 1) + " vs " +
          TextTable::num(spread_at_hundred, 1) + " at a = 100");
  report.add("solves", static_cast<std::uint64_t>(log_as.size()));
  report.add("threads",
             static_cast<std::uint64_t>(solver.last_timing().threads));
  report.add("spread_at_a_10", spread_at_ten);
  report.emit();
  return 0;
}
