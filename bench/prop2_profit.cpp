// Proposition 2: minimizing cost and maximizing profit are equivalent.
// Demonstrates that pi(p) + C(p) is constant across reward vectors and that
// the cost-optimal rewards dominate alternatives in profit.
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/paper_data.hpp"
#include "core/profit.hpp"
#include "core/static_optimizer.hpp"

int main() {
  using namespace tdp;
  bench::banner("Prop. 2", "cost minimization == profit maximization");

  const StaticModel model = paper::static_model_12();
  const PricingSolution sol = optimize_static_prices(model);
  const double flat_price = 2.0;
  const double marginal = 0.5;

  TextTable table({"Reward vector", "Cost C(p)", "Profit pi(p)",
                   "pi(p) + C(p)"});
  const auto add = [&](const std::string& name, const math::Vector& p) {
    const double cost = model.total_cost(p);
    const ProfitBreakdown pb = evaluate_profit(model, p, flat_price, marginal);
    table.add_row({name, TextTable::num(cost, 3),
                   TextTable::num(pb.profit, 3),
                   TextTable::num(pb.profit + cost, 6)});
  };

  add("TIP (zero rewards)", math::Vector(12, 0.0));
  add("optimal TDP", sol.rewards);
  Rng rng(8);
  for (int trial = 0; trial < 5; ++trial) {
    math::Vector p(12);
    for (double& r : p) r = rng.uniform(0.0, model.max_reward());
    add("random #" + std::to_string(trial + 1), p);
  }
  bench::print_table(table);

  std::printf("\n");
  bench::paper_vs_measured("pi + C invariant across reward vectors",
                           "constant (Prop. 2)", "rightmost column");
  bench::paper_vs_measured("optimal-TDP row has max profit & min cost",
                           "argmax pi == argmin C", "rows above");
  return 0;
}
