// Figure 3: normalized waiting functions for patient (beta = 0.5) and
// impatient (beta = 5) users, 12-period model, reward $0.049, unit marginal
// cost of exceeding capacity.
#include <cstdio>

#include "bench_util.hpp"
#include "core/paper_data.hpp"
#include "core/waiting_function.hpp"

int main() {
  using namespace tdp;
  bench::banner("Fig. 3", "waiting functions, patient vs impatient");

  const std::size_t n = 12;
  const double max_reward = 1.0;   // unit marginal cost
  const double reward = 0.49;      // $0.049 in money units of $0.10

  TextTable table({"t (periods)", "w, beta=0.5 (patient)",
                   "w, beta=5 (impatient)"});
  const PowerLawWaitingFunction patient(0.5, n, max_reward);
  const PowerLawWaitingFunction impatient(5.0, n, max_reward);
  for (std::size_t t = 1; t < n; ++t) {
    table.add_row({std::to_string(t),
                   TextTable::num(patient.value(reward, double(t)), 4),
                   TextTable::num(impatient.value(reward, double(t)), 4)});
  }
  bench::print_table(table);

  double patient_mass = 0.0;
  double impatient_mass = 0.0;
  for (std::size_t t = 1; t < n; ++t) {
    patient_mass += patient.value(reward, double(t));
    impatient_mass += impatient.value(reward, double(t));
  }
  std::printf("\n");
  bench::paper_vs_measured("both normalized to total mass p/P = 0.49",
                           "0.49",
                           TextTable::num(patient_mass, 3) + " / " +
                               TextTable::num(impatient_mass, 3));
  bench::paper_vs_measured(
      "impatient curve starts higher, dies faster",
      "crossover",
      "w(1): " + TextTable::num(impatient.value(reward, 1.0), 3) + " > " +
          TextTable::num(patient.value(reward, 1.0), 3) + "; w(10): " +
          TextTable::num(impatient.value(reward, 10.0), 4) + " < " +
          TextTable::num(patient.value(reward, 10.0), 4));

  std::printf("\nTable IV patience-index examples:\n");
  for (std::size_t s = 0; s < paper::kPatienceIndices.size(); ++s) {
    std::printf("  beta = %-4.1f %s\n", paper::kPatienceIndices[s],
                std::string(paper::session_example(s)).c_str());
  }
  return 0;
}
