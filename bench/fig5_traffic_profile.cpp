// Figure 5 (+ Table V inputs): TIP vs TDP traffic profile for the static
// 48-period model, residue spreads, redistributed traffic and the headline
// cost comparison ($4.26 -> $3.26 per user per day, 24% savings).
#include <cstdio>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "core/metrics.hpp"
#include "core/paper_data.hpp"
#include "core/static_optimizer.hpp"

int main() {
  using namespace tdp;
  bench::banner("Fig. 5", "traffic profile, static session model (48p)");

  const StaticModel model = paper::static_model_48();
  const PricingSolution sol = optimize_static_prices(model);
  const auto tip = model.demand().tip_demand_vector();

  TextTable table({"Period", "TIP (MBps)", "TDP (MBps)", "Moved (MBps)"});
  for (std::size_t i = 0; i < 48; ++i) {
    table.add_row({std::to_string(i + 1), TextTable::num(to_mbps(tip[i]), 0),
                   TextTable::num(to_mbps(sol.usage[i]), 1),
                   TextTable::num(to_mbps(sol.usage[i] - tip[i]), 1)});
  }
  bench::print_table(table);

  const double spread_tip = residue_spread(tip);
  const double spread_tdp = residue_spread(sol.usage);
  std::printf("\n");
  bench::paper_vs_measured(
      "per-user daily cost, TIP", "$4.26",
      "$" + TextTable::num(
                per_user_daily_cost_dollars(sol.tip_cost, kPaperUserCount),
                2));
  bench::paper_vs_measured(
      "per-user daily cost, TDP", "$3.26",
      "$" + TextTable::num(
                per_user_daily_cost_dollars(sol.total_cost, kPaperUserCount),
                2));
  bench::paper_vs_measured(
      "cost savings", "24%",
      TextTable::num(100.0 * (sol.tip_cost - sol.total_cost) / sol.tip_cost,
                     1) +
          "%");
  bench::paper_vs_measured(
      "peak-to-valley usage", "200 -> 119 MBps",
      TextTable::num(to_mbps(peak_to_valley(tip)), 0) + " -> " +
          TextTable::num(to_mbps(peak_to_valley(sol.usage)), 0) + " MBps");
  bench::paper_vs_measured(
      "residue spread ratio TDP/TIP", "472.5/923.4 = 0.512",
      TextTable::num(spread_tdp / spread_tip, 3) + "  (" +
          TextTable::num(unit_periods_to_gb(spread_tdp), 0) + " / " +
          TextTable::num(unit_periods_to_gb(spread_tip), 0) +
          " GB in physical units; see EXPERIMENTS.md on the paper's GB "
          "convention)");
  bench::paper_vs_measured(
      "traffic redistributed over the day", "~24% (their convention)",
      TextTable::num(
          100.0 * redistributed_fraction(tip, sol.usage), 1) +
          "% of total volume physically moved; area between profiles = " +
          TextTable::num(100.0 * area_between(tip, sol.usage) / spread_tip,
                         0) +
          "% of TIP residue spread");
  return 0;
}
