// Table X + Section V-B online experiment: the ISP observes 200 MBps
// arriving in period 1 instead of the forecast 230 MBps, updates the demand
// estimate, and re-optimizes rewards one period at a time. The paper
// reports the adjusted schedule and a ~5% cost improvement over the nominal
// rewards ($0.63 vs $0.66).
#include <cstdio>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "core/metrics.hpp"
#include "dynamic/online_pricer.hpp"
#include "dynamic/paper_dynamic.hpp"

int main() {
  using namespace tdp;
  bench::banner("Table X", "online price adjustment after a demand surprise");
  bench::BenchReport report("table10_online");

  OnlinePricer pricer(paper::dynamic_model_48());
  const math::Vector original = pricer.rewards();

  // Period 1 comes in at 200 instead of 230 MBps.
  const auto step1 = pricer.observe_period(0, 20.0);
  // The ISP then continues around the day re-optimizing each period's
  // reward against the updated estimate.
  for (std::size_t period = 1; period < 48; ++period) {
    const double forecast = pricer.model().arrivals().tip_demand(period);
    pricer.observe_period(period, forecast);
  }
  const math::Vector adjusted = pricer.rewards();

  TextTable table({"Period", "Original ($0.10)", "Adjusted ($0.10)"});
  for (std::size_t i = 0; i < 48; ++i) {
    table.add_row({std::to_string(i + 1), TextTable::num(original[i], 3),
                   TextTable::num(adjusted[i], 3)});
  }
  bench::print_table(table);

  const double adjusted_cost = pricer.expected_cost();
  const double nominal_cost = pricer.model().total_cost(original);
  std::printf("\n");
  bench::paper_vs_measured(
      "period-1 reward reacts to the shortfall",
      "0.45 -> 0.57",
      TextTable::num(step1.old_reward, 3) + " -> " +
          TextTable::num(step1.new_reward, 3));
  bench::paper_vs_measured(
      "adjusted beats nominal on the realized day", "$0.63 vs $0.66 (~5%)",
      "$" + TextTable::num(per_user_daily_cost_dollars(adjusted_cost,
                                                       kPaperUserCount),
                           3) +
          " vs $" +
          TextTable::num(
              per_user_daily_cost_dollars(nominal_cost, kPaperUserCount), 3) +
          " (" +
          TextTable::num(100.0 * (nominal_cost - adjusted_cost) /
                             nominal_cost,
                         1) +
          "% saved)");
  report.add("adjusted_cost", adjusted_cost);
  report.add("nominal_cost", nominal_cost);
  report.emit();
  return 0;
}
