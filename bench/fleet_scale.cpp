// Fleet scale sweep: population size × thread count, online pricer in the
// loop, making population scale a tracked perf axis alongside solver speed.
//
// For each fleet size the same day is simulated on 1 thread and on all
// hardware threads; the bench records wall time, throughput, peak RSS and
// the 1-thread-to-N-thread speedup in BENCH_JSON lines, and verifies that
// the per-period aggregates are bit-identical across thread counts (the
// fleet determinism contract — see tests/test_fleet.cpp for the enforced
// version).
//
//   ./bench/bench_fleet_scale             # 10k, 100k, 1M users
//   ./bench/bench_fleet_scale 50000       # custom fleet sizes
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "fleet/fleet_driver.hpp"
#include "fleet/fleet_metrics.hpp"

namespace {

tdp::fleet::FleetMetrics run_fleet(std::uint64_t users, std::size_t threads) {
  tdp::fleet::FleetDriverConfig config;
  config.population.users = users;
  config.population.periods = 48;
  config.shards = 128;  // fixed layout: same reduction order at any threads
  config.threads = threads;
  config.warmup_days = 1;
  config.online_pricing = true;
  tdp::fleet::FleetDriver driver(config);
  return driver.run_day();
}

bool identical_profiles(const tdp::fleet::FleetMetrics& a,
                        const tdp::fleet::FleetMetrics& b) {
  if (a.offered_units != b.offered_units) return false;
  if (a.realized_units != b.realized_units) return false;
  return a.sessions == b.sessions &&
         a.deferred_sessions == b.deferred_sessions;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tdp;

  std::vector<std::uint64_t> fleet_sizes;
  for (int i = 1; i < argc; ++i) {
    fleet_sizes.push_back(std::strtoull(argv[i], nullptr, 10));
  }
  if (fleet_sizes.empty()) fleet_sizes = {10000, 100000, 1000000};

  const std::size_t hw = hardware_threads();
  bench::banner("fleet_scale",
                "sharded user population day, online pricer in the loop");
  std::printf("  hardware threads: %zu\n", hw);

  for (std::uint64_t users : fleet_sizes) {
    // Each cell's BenchReport brackets its whole run (driver construction
    // with the offline solve + the simulated days), so the generic
    // wall_seconds / peak_rss_mb fields describe the cell, while
    // fleet_wall_seconds is the day loop alone.
    const auto fill = [](bench::BenchReport& report,
                         const fleet::FleetMetrics& metrics) {
      report.add("users", static_cast<std::uint64_t>(metrics.users));
      report.add("threads", static_cast<std::uint64_t>(metrics.threads));
      report.add("shards", static_cast<std::uint64_t>(metrics.shards));
      report.add("periods", static_cast<std::uint64_t>(metrics.periods));
      report.add("days", static_cast<std::uint64_t>(metrics.days));
      report.add("sessions", metrics.sessions);
      report.add("deferred_sessions", metrics.deferred_sessions);
      report.add("fleet_wall_seconds", metrics.wall_seconds);
      report.add("sessions_per_second", metrics.sessions_per_second);
      report.add("user_periods_per_second",
                 metrics.user_periods_per_second);
      report.add("peak_to_average_tip", metrics.peak_to_average_tip);
      report.add("peak_to_average_tdp", metrics.peak_to_average_tdp);
      report.add("reward_paid_units", metrics.reward_paid_units);
      report.add("price_server_fetches",
                 static_cast<std::uint64_t>(metrics.price_server_fetches));
    };

    bench::BenchReport serial_report("fleet_scale");
    const fleet::FleetMetrics serial = run_fleet(users, 1);
    fill(serial_report, serial);
    serial_report.emit();

    // On a single-core host both runs use one thread; the parallel run
    // still exercises the pool machinery.
    bench::BenchReport parallel_report("fleet_scale");
    const fleet::FleetMetrics parallel = run_fleet(users, hw);
    const bool deterministic = identical_profiles(serial, parallel);
    const double speedup =
        parallel.wall_seconds > 0.0
            ? serial.wall_seconds / parallel.wall_seconds
            : 0.0;
    fill(parallel_report, parallel);
    parallel_report.add("speedup_vs_1_thread", speedup);
    parallel_report.add("bit_identical_to_1_thread",
                        std::string(deterministic ? "true" : "false"));
    parallel_report.emit();

    std::printf(
        "  %9llu users: %7.3f s on 1 thread, %7.3f s on %zu (%.2fx), "
        "%.2fM sessions/s, P2A %.3f -> %.3f, bit-identical: %s\n",
        static_cast<unsigned long long>(users), serial.wall_seconds,
        parallel.wall_seconds, hw, speedup,
        parallel.sessions_per_second / 1e6, parallel.peak_to_average_tip,
        parallel.peak_to_average_tdp, deterministic ? "yes" : "NO");
    if (!deterministic) {
      std::printf("  ERROR: aggregates differ across thread counts\n");
      return 1;
    }
  }
  return 0;
}
