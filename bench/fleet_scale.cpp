// Fleet scale sweep: population size × thread count, online pricer in the
// loop, making population scale a tracked perf axis alongside solver speed.
//
// For each fleet size the same day is simulated on 1 thread and on all
// hardware threads; the bench records wall time, throughput, peak RSS and
// the 1-thread-to-N-thread speedup in BENCH_JSON lines, and verifies that
// the per-period aggregates are bit-identical across thread counts (the
// fleet determinism contract — see tests/test_fleet.cpp for the enforced
// version).
//
//   ./bench/bench_fleet_scale             # 10k, 100k, 1M users
//   ./bench/bench_fleet_scale 50000       # custom fleet sizes
//   ./bench/bench_fleet_scale 1000000 --out BENCH_fleet.json
//
// --out writes the schema-1 suite JSON consumed by
// tools/check_bench_regression.py --suite fleet: a calibration workload
// (the same fixed reference-kernel loop the kernel suite times, so wall
// times normalize across hosts) plus one entry per (users, threads) cell
// with the day wall time and throughput.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "core/deferral_kernel.hpp"
#include "core/paper_data.hpp"
#include "fleet/fleet_driver.hpp"
#include "fleet/fleet_metrics.hpp"

namespace {

tdp::fleet::FleetMetrics run_fleet(std::uint64_t users, std::size_t threads) {
  tdp::fleet::FleetDriverConfig config;
  config.population.users = users;
  config.population.periods = 48;
  config.shards = 128;  // fixed layout: same reduction order at any threads
  config.threads = threads;
  config.warmup_days = 1;
  config.online_pricing = true;
  tdp::fleet::FleetDriver driver(config);
  return driver.run_day();
}

/// The kernel suite's calibration workload, repeated here so fleet and
/// kernel baselines normalize the same way: a fixed 12-period reference
/// kernel evaluated 50 times. Tracks host speed, not the fleet fast path,
/// so fleet-code changes stay visible after normalization.
double calibration_run() {
  using Clock = std::chrono::steady_clock;
  const tdp::DeferralKernel kernel(
      tdp::paper::make_profile(tdp::paper::table8_mix_12(),
                               tdp::paper::kStaticNormalizationReward,
                               tdp::LagNormalization::kDiscrete, 0.7),
      tdp::LagConvention::kPeriodStart);
  const tdp::math::Vector rewards(12, 0.4);
  double sink = 0.0;
  const auto start = Clock::now();
  for (std::size_t r = 0; r < 50; ++r) {
    for (std::size_t i = 0; i < 12; ++i) {
      sink += kernel.inflow(i, rewards[i]) + kernel.outflow(i, rewards);
    }
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (sink < 0.0) std::printf("?\n");  // keep the sink alive
  return seconds;
}

void append_json_field(std::string& out, const char* key, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "\"%s\":%.17g", key, value);
  out += buffer;
}

struct SuiteEntry {
  std::string name;
  std::vector<std::pair<std::string, double>> fields;
};

bool identical_profiles(const tdp::fleet::FleetMetrics& a,
                        const tdp::fleet::FleetMetrics& b) {
  if (a.offered_units != b.offered_units) return false;
  if (a.realized_units != b.realized_units) return false;
  return a.sessions == b.sessions &&
         a.deferred_sessions == b.deferred_sessions;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tdp;

  std::vector<std::uint64_t> fleet_sizes;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
      continue;
    }
    fleet_sizes.push_back(std::strtoull(argv[i], nullptr, 10));
  }
  if (fleet_sizes.empty()) fleet_sizes = {10000, 100000, 1000000};

  const std::size_t hw = hardware_threads();
  const double calibration_seconds =
      out_path.empty() ? 0.0 : calibration_run();
  std::vector<SuiteEntry> entries;
  bench::banner("fleet_scale",
                "sharded user population day, online pricer in the loop");
  std::printf("  hardware threads: %zu\n", hw);

  for (std::uint64_t users : fleet_sizes) {
    // Each cell's BenchReport brackets its whole run (driver construction
    // with the offline solve + the simulated days), so the generic
    // wall_seconds / peak_rss_mb fields describe the cell, while
    // fleet_wall_seconds is the day loop alone.
    const auto fill = [](bench::BenchReport& report,
                         const fleet::FleetMetrics& metrics) {
      report.add("users", static_cast<std::uint64_t>(metrics.users));
      report.add("threads", static_cast<std::uint64_t>(metrics.threads));
      report.add("shards", static_cast<std::uint64_t>(metrics.shards));
      report.add("periods", static_cast<std::uint64_t>(metrics.periods));
      report.add("days", static_cast<std::uint64_t>(metrics.days));
      report.add("sessions", metrics.sessions);
      report.add("deferred_sessions", metrics.deferred_sessions);
      report.add("fleet_wall_seconds", metrics.wall_seconds);
      report.add("sessions_per_second", metrics.sessions_per_second);
      report.add("user_periods_per_second",
                 metrics.user_periods_per_second);
      report.add("peak_to_average_tip", metrics.peak_to_average_tip);
      report.add("peak_to_average_tdp", metrics.peak_to_average_tdp);
      report.add("reward_paid_units", metrics.reward_paid_units);
      report.add("price_server_fetches",
                 static_cast<std::uint64_t>(metrics.price_server_fetches));
    };

    bench::BenchReport serial_report("fleet_scale");
    serial_report.set_threads_used(1);
    const fleet::FleetMetrics serial = run_fleet(users, 1);
    fill(serial_report, serial);
    serial_report.emit();

    // On a single-core host both runs use one thread; the parallel run
    // still exercises the pool machinery.
    bench::BenchReport parallel_report("fleet_scale");
    parallel_report.set_threads_used(hw);
    const fleet::FleetMetrics parallel = run_fleet(users, hw);
    const bool deterministic = identical_profiles(serial, parallel);
    const double speedup =
        parallel.wall_seconds > 0.0
            ? serial.wall_seconds / parallel.wall_seconds
            : 0.0;
    fill(parallel_report, parallel);
    parallel_report.add("speedup_vs_1_thread", speedup);
    parallel_report.add("bit_identical_to_1_thread",
                        std::string(deterministic ? "true" : "false"));
    parallel_report.emit();

    std::printf(
        "  %9llu users: %7.3f s on 1 thread, %7.3f s on %zu (%.2fx), "
        "%.2fM sessions/s, P2A %.3f -> %.3f, bit-identical: %s\n",
        static_cast<unsigned long long>(users), serial.wall_seconds,
        parallel.wall_seconds, hw, speedup,
        parallel.sessions_per_second / 1e6, parallel.peak_to_average_tip,
        parallel.peak_to_average_tdp, deterministic ? "yes" : "NO");
    if (!deterministic) {
      std::printf("  ERROR: aggregates differ across thread counts\n");
      return 1;
    }

    if (!out_path.empty()) {
      const auto cell = [&](const char* kind,
                            const fleet::FleetMetrics& metrics) {
        SuiteEntry entry;
        entry.name = "fleet_" + std::to_string(users) + "_" + kind;
        entry.fields = {
            {"users", static_cast<double>(metrics.users)},
            {"threads", static_cast<double>(metrics.threads)},
            {"fleet_wall_seconds", metrics.wall_seconds},
            {"sessions_per_second", metrics.sessions_per_second},
        };
        entries.push_back(std::move(entry));
      };
      cell("serial", serial);
      cell("parallel", parallel);
    }
  }

  // ---- BENCH_fleet.json ---------------------------------------------------
  if (!out_path.empty()) {
    std::string json = "{\n  \"schema\": 1,\n  ";
    append_json_field(json, "calibration_seconds", calibration_seconds);
    json += ",\n  \"benches\": {\n";
    for (std::size_t e = 0; e < entries.size(); ++e) {
      json += "    \"" + entries[e].name + "\": {";
      for (std::size_t f = 0; f < entries[e].fields.size(); ++f) {
        if (f) json += ", ";
        append_json_field(json, entries[e].fields[f].first.c_str(),
                          entries[e].fields[f].second);
      }
      json += e + 1 < entries.size() ? "},\n" : "}\n";
    }
    json += "  }\n}\n";
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << json;
    std::printf("  wrote %s\n", out_path.c_str());
  }
  return 0;
}
